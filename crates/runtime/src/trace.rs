//! Execution traces: per-task start/end times per worker, with the derived
//! utilization statistics experiment E02 reports, plus the resilience
//! telemetry (retries/recoveries/skips) recorded by resilient executions.

use crate::resilience::ResilienceStats;
use std::sync::Arc;
use std::time::Duration;

/// One executed task *attempt*. In fail-stop executions every task has at
/// most one attempt; resilient executions record one event per attempt, so
/// retried tasks appear multiple times with increasing `attempt`.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Task id within the executed graph.
    pub task: usize,
    /// Worker index that ran the task.
    pub worker: usize,
    /// Start time relative to the execution epoch.
    pub start: Duration,
    /// End time relative to the execution epoch.
    pub end: Duration,
    /// 1-based attempt number (always 1 for fail-stop executions).
    pub attempt: u32,
    /// Flops recorded (via `xsc-metrics`) on the worker thread while this
    /// attempt ran. Zero when the kernel is uninstrumented, or when an
    /// instrumented kernel fanned its recording out to other threads.
    pub flops: u64,
    /// DRAM bytes (read + written) recorded on the worker thread while this
    /// attempt ran; same attribution caveats as `flops`.
    pub bytes: u64,
}

impl TraceEvent {
    /// Arithmetic intensity of the attempt in flops/byte (`None` when no
    /// bytes were attributed, e.g. uninstrumented kernels).
    pub fn intensity(&self) -> Option<f64> {
        (self.bytes > 0).then(|| self.flops as f64 / self.bytes as f64)
    }
}

/// Execution record returned by the executor.
pub struct Trace {
    threads: usize,
    wall: Duration,
    events: Vec<TraceEvent>,
    names: Arc<Vec<String>>,
    resilience: Option<ResilienceStats>,
    steals: u64,
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace")
            .field("threads", &self.threads)
            .field("wall", &self.wall)
            .field("events", &self.events.len())
            .finish()
    }
}

impl Trace {
    pub(crate) fn empty(threads: usize) -> Self {
        Trace {
            threads,
            wall: Duration::ZERO,
            events: Vec::new(),
            names: Arc::new(Vec::new()),
            resilience: None,
            steals: 0,
        }
    }

    pub(crate) fn new(
        threads: usize,
        wall: Duration,
        mut events: Vec<TraceEvent>,
        names: Arc<Vec<String>>,
    ) -> Self {
        events.sort_by_key(|e| e.start);
        Trace {
            threads,
            wall,
            events,
            names,
            resilience: None,
            steals: 0,
        }
    }

    pub(crate) fn with_resilience(mut self, stats: ResilienceStats) -> Self {
        self.resilience = Some(stats);
        self
    }

    pub(crate) fn with_steals(mut self, steals: u64) -> Self {
        self.steals = steals;
        self
    }

    /// Number of tasks that ran on a worker other than the one whose ready
    /// queue they were pushed to (work-stealing executor). Always 0 for
    /// single-worker executions — one worker has no one to steal from.
    pub fn steals(&self) -> u64 {
        self.steals
    }

    /// Resilience telemetry, present when the trace came from
    /// [`Executor::execute_resilient`](crate::Executor::execute_resilient).
    pub fn resilience(&self) -> Option<&ResilienceStats> {
        self.resilience.as_ref()
    }

    /// Number of worker threads used.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of task events recorded (0 unless `execute_traced` was used,
    /// except that the count of *run* tasks is always available via the
    /// wall-clock path).
    pub fn tasks_run(&self) -> usize {
        self.events.len()
    }

    /// Wall-clock duration of the whole execution.
    pub fn makespan(&self) -> Duration {
        self.wall
    }

    /// All recorded events, sorted by start time.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Name of task `id`.
    pub fn task_name(&self, id: usize) -> &str {
        self.names.get(id).map_or("<unknown>", |s| s.as_str())
    }

    /// Total busy time summed over workers.
    pub fn busy_time(&self) -> Duration {
        self.events.iter().map(|e| e.end - e.start).sum()
    }

    /// Fraction of `threads × makespan` spent executing tasks, in `[0, 1]`.
    ///
    /// This is the number the fork-join-vs-dataflow experiment compares:
    /// barriers show up directly as lost utilization.
    pub fn utilization(&self) -> f64 {
        let denom = self.wall.as_secs_f64() * self.threads as f64;
        if denom <= 0.0 {
            return 0.0;
        }
        (self.busy_time().as_secs_f64() / denom).min(1.0)
    }

    /// Total flops attributed to traced tasks (sum over events).
    pub fn total_flops(&self) -> u64 {
        self.events.iter().map(|e| e.flops).sum()
    }

    /// Total DRAM bytes attributed to traced tasks (sum over events).
    pub fn total_bytes(&self) -> u64 {
        self.events.iter().map(|e| e.bytes).sum()
    }

    /// Busy time per worker index.
    pub fn busy_per_worker(&self) -> Vec<Duration> {
        let mut busy = vec![Duration::ZERO; self.threads];
        for e in &self.events {
            if e.worker < busy.len() {
                busy[e.worker] += e.end - e.start;
            }
        }
        busy
    }

    /// Serializes the trace in the Chrome trace-event JSON format
    /// (load via `chrome://tracing` or Perfetto): one complete ("X") event
    /// per task, one track per worker. Timestamps are microseconds. Task
    /// names are fully JSON-escaped, so hostile names (quotes, backslashes,
    /// control characters) cannot corrupt the document.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mut name = String::new();
            escape_json_into(self.task_name(e.task), &mut name);
            if e.attempt > 1 {
                name.push_str(&format!(" (attempt {})", e.attempt));
            }
            let args = if e.flops > 0 || e.bytes > 0 {
                match e.intensity() {
                    Some(i) => format!(
                        ",\"args\":{{\"flops\":{},\"bytes\":{},\"intensity\":{i:.4}}}",
                        e.flops, e.bytes
                    ),
                    None => format!(",\"args\":{{\"flops\":{},\"bytes\":{}}}", e.flops, e.bytes),
                }
            } else {
                String::new()
            };
            out.push_str(&format!(
                "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}{args}}}",
                e.worker,
                e.start.as_secs_f64() * 1e6,
                (e.end - e.start).as_secs_f64() * 1e6
            ));
        }
        out.push(']');
        out
    }

    /// A coarse ASCII Gantt chart (`width` columns), one row per worker.
    /// Busy slots render as `#`, idle as `.`.
    pub fn ascii_gantt(&self, width: usize) -> String {
        let width = width.max(10);
        let total = self.wall.as_secs_f64();
        let mut rows = vec![vec![b'.'; width]; self.threads];
        if total > 0.0 {
            for e in &self.events {
                // Same guard as `busy_per_worker`: a stray worker id (from a
                // hand-built or corrupted trace) must not panic the renderer.
                let Some(row) = rows.get_mut(e.worker) else {
                    continue;
                };
                let s = ((e.start.as_secs_f64() / total) * width as f64) as usize;
                let t = ((e.end.as_secs_f64() / total) * width as f64).ceil() as usize;
                let lo = s.min(width);
                let hi = t.min(width).max(lo);
                for c in &mut row[lo..hi] {
                    *c = b'#';
                }
            }
        }
        let mut out = String::new();
        for (w, row) in rows.into_iter().enumerate() {
            out.push_str(&format!("w{w:02} |"));
            out.push_str(std::str::from_utf8(&row).unwrap());
            out.push_str("|\n");
        }
        out
    }
}

/// Appends `s` to `out` with JSON string escaping (quote, backslash, and
/// all control characters per RFC 8259).
fn escape_json_into(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal JSON well-formedness checker (objects, arrays, strings,
    /// numbers, literals) used to validate `to_chrome_json` output without
    /// an external parser. Returns the rest of the input after one value.
    fn parse_json_value(s: &str) -> Result<&str, String> {
        let s = s.trim_start();
        let mut chars = s.char_indices();
        match chars.next().map(|(_, c)| c) {
            Some('{') => {
                let mut rest = s[1..].trim_start();
                if let Some(r) = rest.strip_prefix('}') {
                    return Ok(r);
                }
                loop {
                    rest = parse_json_string(rest.trim_start())?;
                    rest = rest.trim_start().strip_prefix(':').ok_or("expected ':'")?;
                    rest = parse_json_value(rest)?;
                    rest = rest.trim_start();
                    if let Some(r) = rest.strip_prefix(',') {
                        rest = r.trim_start();
                    } else {
                        return rest.strip_prefix('}').ok_or("expected '}'".into());
                    }
                }
            }
            Some('[') => {
                let mut rest = s[1..].trim_start();
                if let Some(r) = rest.strip_prefix(']') {
                    return Ok(r);
                }
                loop {
                    rest = parse_json_value(rest)?;
                    rest = rest.trim_start();
                    if let Some(r) = rest.strip_prefix(',') {
                        rest = r;
                    } else {
                        return rest.strip_prefix(']').ok_or("expected ']'".into());
                    }
                }
            }
            Some('"') => parse_json_string(s),
            Some(c) if c == '-' || c.is_ascii_digit() => {
                let end = s
                    .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
                    .unwrap_or(s.len());
                s[..end]
                    .parse::<f64>()
                    .map_err(|e| format!("bad number {:?}: {e}", &s[..end]))?;
                Ok(&s[end..])
            }
            _ => ["true", "false", "null"]
                .iter()
                .find_map(|lit| s.strip_prefix(lit))
                .ok_or_else(|| format!("unexpected token at {:?}", &s[..s.len().min(12)])),
        }
    }

    fn parse_json_string(s: &str) -> Result<&str, String> {
        let body = s.strip_prefix('"').ok_or("expected '\"'")?;
        let mut it = body.char_indices();
        while let Some((i, c)) = it.next() {
            match c {
                '"' => return Ok(&body[i + 1..]),
                '\\' => match it.next().map(|(_, e)| e) {
                    Some('u') => {
                        let hex: String =
                            (0..4).filter_map(|_| it.next().map(|(_, h)| h)).collect();
                        if hex.len() != 4 || !hex.chars().all(|h| h.is_ascii_hexdigit()) {
                            return Err(format!("bad \\u escape {hex:?}"));
                        }
                    }
                    Some(e) if "\"\\/bfnrt".contains(e) => {}
                    other => return Err(format!("bad escape {other:?}")),
                },
                c if (c as u32) < 0x20 => {
                    return Err(format!("raw control char {:#x} in string", c as u32))
                }
                _ => {}
            }
        }
        Err("unterminated string".into())
    }

    fn assert_valid_json(doc: &str) {
        let rest = parse_json_value(doc).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{doc}"));
        assert!(rest.trim().is_empty(), "trailing garbage: {rest:?}");
    }

    fn sample_trace() -> Trace {
        let names = Arc::new(vec!["a".to_string(), "b".to_string()]);
        Trace::new(
            2,
            Duration::from_millis(10),
            vec![
                TraceEvent {
                    task: 1,
                    worker: 1,
                    start: Duration::from_millis(5),
                    end: Duration::from_millis(10),
                    attempt: 1,
                    flops: 0,
                    bytes: 0,
                },
                TraceEvent {
                    task: 0,
                    worker: 0,
                    start: Duration::from_millis(0),
                    end: Duration::from_millis(10),
                    attempt: 1,
                    flops: 4000,
                    bytes: 1000,
                },
            ],
            names,
        )
    }

    #[test]
    fn events_sorted_by_start() {
        let t = sample_trace();
        assert_eq!(t.events()[0].task, 0);
        assert_eq!(t.events()[1].task, 1);
    }

    #[test]
    fn utilization_computed_correctly() {
        let t = sample_trace();
        // Busy = 10ms + 5ms = 15ms over 2 workers x 10ms = 20ms -> 0.75.
        assert!((t.utilization() - 0.75).abs() < 1e-9);
        assert_eq!(
            t.busy_per_worker(),
            vec![Duration::from_millis(10), Duration::from_millis(5)]
        );
    }

    #[test]
    fn names_resolve() {
        let t = sample_trace();
        assert_eq!(t.task_name(0), "a");
        assert_eq!(t.task_name(99), "<unknown>");
    }

    #[test]
    fn gantt_has_one_row_per_worker() {
        let t = sample_trace();
        let g = t.ascii_gantt(40);
        assert_eq!(g.lines().count(), 2);
        assert!(g.contains('#'));
        // Worker 1 idles the first half.
        let row1 = g.lines().nth(1).unwrap();
        assert!(row1.contains('.'));
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let t = sample_trace();
        let j = t.to_chrome_json();
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert_eq!(j.matches("\"ph\":\"X\"").count(), 2);
        assert!(j.contains("\"name\":\"a\""));
        assert!(j.contains("\"tid\":1"));
        // Durations in microseconds.
        assert!(j.contains("\"dur\":10000.000") || j.contains("\"dur\":10000"));
    }

    #[test]
    fn intensity_and_totals_from_attributed_events() {
        let t = sample_trace();
        assert_eq!(t.total_flops(), 4000);
        assert_eq!(t.total_bytes(), 1000);
        let attributed = &t.events()[0]; // task 0 sorts first
        assert_eq!(attributed.intensity(), Some(4.0));
        assert_eq!(t.events()[1].intensity(), None);
        let j = t.to_chrome_json();
        assert!(
            j.contains("\"args\":{\"flops\":4000,\"bytes\":1000,\"intensity\":4.0000}"),
            "{j}"
        );
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = Trace::empty(4);
        assert_eq!(t.utilization(), 0.0);
        assert_eq!(t.tasks_run(), 0);
        assert_eq!(t.busy_per_worker().len(), 4);
        let _ = t.ascii_gantt(20);
    }

    #[test]
    fn gantt_ignores_stray_worker_ids() {
        // A worker id >= threads (hand-built or corrupted trace) must be
        // skipped by the renderer, exactly as busy_per_worker skips it.
        let names = Arc::new(vec!["a".to_string(), "stray".to_string()]);
        let t = Trace::new(
            2,
            Duration::from_millis(10),
            vec![
                TraceEvent {
                    task: 0,
                    worker: 0,
                    start: Duration::from_millis(0),
                    end: Duration::from_millis(10),
                    attempt: 1,
                    flops: 0,
                    bytes: 0,
                },
                TraceEvent {
                    task: 1,
                    worker: 7, // out of range for a 2-thread trace
                    start: Duration::from_millis(2),
                    end: Duration::from_millis(6),
                    attempt: 1,
                    flops: 0,
                    bytes: 0,
                },
            ],
            names,
        );
        let g = t.ascii_gantt(40);
        assert_eq!(g.lines().count(), 2, "one row per real worker:\n{g}");
        assert!(g.lines().next().unwrap().contains('#'));
        // The stray event contributes to neither row nor busy accounting.
        assert_eq!(t.busy_per_worker()[1], Duration::ZERO);
    }

    #[test]
    fn chrome_json_escapes_hostile_task_names() {
        let hostile = "evil \"task\" \\ with \n newline, \t tab and \u{1} ctrl".to_string();
        let names = Arc::new(vec![hostile.clone()]);
        let t = Trace::new(
            1,
            Duration::from_millis(5),
            vec![TraceEvent {
                task: 0,
                worker: 0,
                start: Duration::ZERO,
                end: Duration::from_millis(5),
                attempt: 2,
                flops: 0,
                bytes: 0,
            }],
            names,
        );
        let j = t.to_chrome_json();
        assert_valid_json(&j);
        // The escaped form must be present (quote kept, not rewritten to ').
        assert!(
            j.contains(r#"evil \"task\" \\ with \n newline, \t tab and \u0001 ctrl"#),
            "{j}"
        );
        assert!(j.contains("(attempt 2)"));
        // No raw control characters may survive.
        assert!(!j.chars().any(|c| (c as u32) < 0x20));
    }

    #[test]
    fn chrome_json_validator_sanity() {
        assert_valid_json(r#"[{"a":1.5e3,"b":[true,null,"xA"]},{}]"#);
        assert!(parse_json_value("[1,").is_err());
        assert!(parse_json_value("\"\u{1}\"").is_err());
        assert!(parse_json_value(r#"{"a" 1}"#).is_err());
    }
}
