//! Task graph construction with automatic dependence analysis.

use crate::resilience::{Attempt, TaskFault};
use std::collections::BTreeMap;

/// Identifier of a datum (e.g. a matrix tile) used for dependence analysis.
/// The runtime never touches the data itself — the id is only a key.
pub type DataId = usize;

/// Index of a task within its [`TaskGraph`], in insertion order.
pub type TaskId = usize;

/// Affinity value of tasks that declared none ([`TaskGraph::set_affinity`]
/// never called): such tasks never match a worker's last-run affinity, so
/// stealing treats them purely by scheduling key.
pub const NO_AFFINITY: u64 = u64::MAX;

/// How a task touches a datum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Shared read: concurrent with other reads of the same datum.
    Read(DataId),
    /// Exclusive access (read-modify-write): ordered against every other
    /// access to the same datum.
    Write(DataId),
}

/// A task body. `Once` kernels are the classic fire-and-forget closure;
/// `Fallible` kernels can be called repeatedly (once per attempt) and
/// report failure as a value, which is what makes task-level retry
/// possible — the fault domain is the task, not the process.
pub(crate) enum Kernel {
    Once(Box<dyn FnOnce() + Send + 'static>),
    Fallible(Box<dyn Fn(Attempt) -> Result<(), TaskFault> + Send + Sync + 'static>),
}

pub(crate) struct Task {
    pub name: String,
    pub kernel: Option<Kernel>,
    /// A-priori cost estimate used for critical-path priorities.
    pub cost: u64,
    /// Caller-assigned urgency used by [`SchedPolicy::Explicit`]
    /// (higher runs first; ties break on insertion order). Unlike the
    /// critical-path priority this is not derived from the graph — it is
    /// whatever the submitting layer says (e.g. a serving front-end's
    /// tenant priority class).
    ///
    /// [`SchedPolicy::Explicit`]: crate::SchedPolicy::Explicit
    pub explicit: u64,
    /// Locality tag consulted by the work-stealing executor: a thief
    /// prefers to steal a task whose affinity matches the affinity of the
    /// task it last ran (e.g. the same macro-tile column, so the packed
    /// panel is still warm in its cache). [`NO_AFFINITY`] when unset.
    pub affinity: u64,
}

/// Per-datum state for the superscalar dependence scan.
#[derive(Default)]
struct DatumState {
    last_writer: Option<TaskId>,
    readers_since_write: Vec<TaskId>,
}

/// A dependence DAG built by inserting tasks in sequential program order.
///
/// Insertion performs the classic superscalar hazard analysis:
///
/// * **RAW** — a read depends on the previous writer of the datum;
/// * **WAW** — a write depends on the previous writer;
/// * **WAR** — a write depends on every read since the previous write.
///
/// Executing the tasks in any order consistent with these edges yields the
/// same result as sequential execution (a property the test-suite checks
/// with randomized programs).
#[derive(Default)]
pub struct TaskGraph {
    pub(crate) tasks: Vec<Task>,
    edges: Vec<(TaskId, TaskId)>,
    state: BTreeMap<DataId, DatumState>,
}

impl TaskGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Inserts a task with unit cost. See [`TaskGraph::add_task_with_cost`].
    pub fn add_task(
        &mut self,
        name: impl Into<String>,
        accesses: impl IntoIterator<Item = Access>,
        kernel: impl FnOnce() + Send + 'static,
    ) -> TaskId {
        self.add_task_with_cost(name, accesses, 1, kernel)
    }

    /// Inserts a task in program order, declaring its data accesses, and
    /// returns its id. `cost` is a relative execution-time estimate used by
    /// the critical-path scheduling policy (e.g. the flop count).
    pub fn add_task_with_cost(
        &mut self,
        name: impl Into<String>,
        accesses: impl IntoIterator<Item = Access>,
        cost: u64,
        kernel: impl FnOnce() + Send + 'static,
    ) -> TaskId {
        self.insert(name, accesses, cost, Kernel::Once(Box::new(kernel)))
    }

    /// Inserts a *fallible* task with unit cost.
    /// See [`TaskGraph::add_fallible_task_with_cost`].
    pub fn add_fallible_task(
        &mut self,
        name: impl Into<String>,
        accesses: impl IntoIterator<Item = Access>,
        kernel: impl Fn(Attempt) -> Result<(), TaskFault> + Send + Sync + 'static,
    ) -> TaskId {
        self.add_fallible_task_with_cost(name, accesses, 1, kernel)
    }

    /// Inserts a task whose kernel may fail and be re-executed.
    ///
    /// The kernel is called with an [`Attempt`] (1-based attempt number);
    /// returning `Err(TaskFault)` — or panicking — marks the attempt
    /// failed. Under [`Executor::execute_resilient`] the task is then
    /// retried up to the policy's budget; a kernel that mutates its output
    /// in place should snapshot it on attempt 1 and restore it when
    /// [`Attempt::is_retry`] is set. Under the plain [`Executor::execute`]
    /// a returned fault aborts the run (fail-stop), preserving the
    /// pre-resilience semantics.
    ///
    /// [`Executor::execute`]: crate::Executor::execute
    /// [`Executor::execute_resilient`]: crate::Executor::execute_resilient
    pub fn add_fallible_task_with_cost(
        &mut self,
        name: impl Into<String>,
        accesses: impl IntoIterator<Item = Access>,
        cost: u64,
        kernel: impl Fn(Attempt) -> Result<(), TaskFault> + Send + Sync + 'static,
    ) -> TaskId {
        self.insert(name, accesses, cost, Kernel::Fallible(Box::new(kernel)))
    }

    fn insert(
        &mut self,
        name: impl Into<String>,
        accesses: impl IntoIterator<Item = Access>,
        cost: u64,
        kernel: Kernel,
    ) -> TaskId {
        let id = self.tasks.len();
        for access in accesses {
            match access {
                Access::Read(d) => {
                    let st = self.state.entry(d).or_default();
                    if let Some(w) = st.last_writer {
                        self.edges.push((w, id)); // RAW
                    }
                    st.readers_since_write.push(id);
                }
                Access::Write(d) => {
                    let st = self.state.entry(d).or_default();
                    if let Some(w) = st.last_writer {
                        self.edges.push((w, id)); // WAW
                    }
                    for &r in &st.readers_since_write {
                        if r != id {
                            self.edges.push((r, id)); // WAR
                        }
                    }
                    st.readers_since_write.clear();
                    st.last_writer = Some(id);
                }
            }
        }
        self.tasks.push(Task {
            name: name.into(),
            kernel: Some(kernel),
            cost: cost.max(1),
            explicit: 0,
            affinity: NO_AFFINITY,
        });
        id
    }

    /// Assigns the caller-provided urgency consulted by
    /// [`SchedPolicy::Explicit`]: among ready tasks the highest value runs
    /// first, ties breaking on insertion order. Tasks default to 0; the
    /// value has no effect under the other policies.
    ///
    /// [`SchedPolicy::Explicit`]: crate::SchedPolicy::Explicit
    pub fn set_priority(&mut self, id: TaskId, priority: u64) {
        self.tasks[id].explicit = priority;
    }

    /// Tags task `id` with a locality affinity (any caller-chosen value —
    /// e.g. the macro-tile column the task writes). Tasks sharing an
    /// affinity value touch the same data, so the work-stealing executor
    /// steers a thief toward tasks matching the affinity of the task it
    /// last ran. Purely a scheduling hint: it never affects which tasks
    /// run or what they compute, only which worker runs them.
    pub fn set_affinity(&mut self, id: TaskId, affinity: u64) {
        self.tasks[id].affinity = affinity;
    }

    /// Number of tasks inserted so far.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` if no tasks have been inserted.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Name of task `id` (for traces and debugging).
    pub fn task_name(&self, id: TaskId) -> &str {
        &self.tasks[id].name
    }

    /// Finalizes the graph: deduplicated successor lists, in-degrees, and
    /// critical-path-to-sink priorities (computed over the `cost` estimates).
    pub(crate) fn finalize(&mut self) -> FinalizedGraph {
        let n = self.tasks.len();
        let mut successors: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        let mut in_degree = vec![0usize; n];
        self.edges.sort_unstable();
        self.edges.dedup();
        for &(from, to) in &self.edges {
            debug_assert!(from < to, "edges must point forward in program order");
            successors[from].push(to);
            in_degree[to] += 1;
        }
        // Tasks are inserted in program order, so every edge goes from a
        // lower id to a higher id; a reverse sweep is a reverse topological
        // order.
        let mut priority = vec![0u64; n];
        for id in (0..n).rev() {
            let best_succ = successors[id]
                .iter()
                .map(|&s| priority[s])
                .max()
                .unwrap_or(0);
            priority[id] = self.tasks[id].cost + best_succ;
        }
        FinalizedGraph {
            successors,
            in_degree,
            priority,
            explicit: self.tasks.iter().map(|t| t.explicit).collect(),
            affinity: self.tasks.iter().map(|t| t.affinity).collect(),
        }
    }

    /// Structural view of the dependence edges (deduplicated, sorted) —
    /// used by the discrete-event simulator in `xsc-machine` to replay a
    /// graph on a modeled machine.
    pub fn edge_list(&mut self) -> Vec<(TaskId, TaskId)> {
        self.edges.sort_unstable();
        self.edges.dedup();
        self.edges.clone()
    }

    /// Per-task cost estimates, in task-id order.
    pub fn costs(&self) -> Vec<u64> {
        self.tasks.iter().map(|t| t.cost).collect()
    }

    /// Runs every task on the calling thread in insertion order (the
    /// sequential-semantics reference used by the property tests).
    /// Fallible kernels run exactly once; a fault panics (fail-stop), so
    /// serial execution matches the plain executor's semantics.
    pub fn execute_serial(mut self) {
        for (id, t) in self.tasks.iter_mut().enumerate() {
            match t.kernel.take() {
                Some(Kernel::Once(k)) => k(),
                Some(Kernel::Fallible(k)) => {
                    if let Err(fault) = k(Attempt {
                        task: id,
                        attempt: 1,
                    }) {
                        panic!("task {id} ({}) failed: {}", t.name, fault.message());
                    }
                }
                None => {}
            }
        }
    }

    /// Length of the critical path through the graph in cost units, and the
    /// total cost — their ratio bounds achievable speedup (Brent's theorem).
    pub fn critical_path(&mut self) -> (u64, u64) {
        let fin = self.finalize();
        let cp = fin.priority.iter().copied().max().unwrap_or(0);
        let total: u64 = self.tasks.iter().map(|t| t.cost).sum();
        (cp, total)
    }
}

pub(crate) struct FinalizedGraph {
    pub successors: Vec<Vec<TaskId>>,
    pub in_degree: Vec<usize>,
    pub priority: Vec<u64>,
    pub explicit: Vec<u64>,
    pub affinity: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn raw_dependency_created() {
        let mut g = TaskGraph::new();
        let w = g.add_task("w", [Access::Write(0)], || {});
        let r = g.add_task("r", [Access::Read(0)], || {});
        let edges = g.edge_list();
        assert_eq!(edges, vec![(w, r)]);
    }

    #[test]
    fn war_and_waw_dependencies_created() {
        let mut g = TaskGraph::new();
        let w0 = g.add_task("w0", [Access::Write(0)], || {});
        let r1 = g.add_task("r1", [Access::Read(0)], || {});
        let r2 = g.add_task("r2", [Access::Read(0)], || {});
        let w1 = g.add_task("w1", [Access::Write(0)], || {});
        let edges = g.edge_list();
        // RAW edges w0->r1, w0->r2; WAR edges r1->w1, r2->w1; WAW w0->w1.
        assert!(edges.contains(&(w0, r1)));
        assert!(edges.contains(&(w0, r2)));
        assert!(edges.contains(&(r1, w1)));
        assert!(edges.contains(&(r2, w1)));
        assert!(edges.contains(&(w0, w1)));
    }

    #[test]
    fn independent_data_have_no_edges() {
        let mut g = TaskGraph::new();
        g.add_task("a", [Access::Write(0)], || {});
        g.add_task("b", [Access::Write(1)], || {});
        assert!(g.edge_list().is_empty());
    }

    #[test]
    fn reads_do_not_depend_on_reads() {
        let mut g = TaskGraph::new();
        g.add_task("r1", [Access::Read(0)], || {});
        g.add_task("r2", [Access::Read(0)], || {});
        assert!(g.edge_list().is_empty());
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", [Access::Write(0), Access::Write(1)], || {});
        let b = g.add_task("b", [Access::Read(0), Access::Read(1)], || {});
        assert_eq!(g.edge_list(), vec![(a, b)]);
        let fin = g.finalize();
        assert_eq!(fin.in_degree[b], 1);
    }

    #[test]
    fn serial_execution_runs_in_order() {
        let log = Arc::new(AtomicUsize::new(0));
        let mut g = TaskGraph::new();
        for i in 0..10 {
            let log = Arc::clone(&log);
            g.add_task("t", [Access::Write(0)], move || {
                // Encode order check: value must equal i when we run.
                let v = log.fetch_add(1, Ordering::SeqCst);
                assert_eq!(v, i);
            });
        }
        g.execute_serial();
        assert_eq!(log.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn critical_path_of_chain_is_total_cost() {
        let mut g = TaskGraph::new();
        for i in 0..5 {
            g.add_task_with_cost("t", [Access::Write(0)], 10 + i, || {});
        }
        let (cp, total) = g.critical_path();
        assert_eq!(cp, total);
    }

    #[test]
    fn critical_path_of_independent_tasks_is_max_cost() {
        let mut g = TaskGraph::new();
        for i in 0..5 {
            g.add_task_with_cost("t", [Access::Write(i)], 10 * (i as u64 + 1), || {});
        }
        let (cp, total) = g.critical_path();
        assert_eq!(cp, 50);
        assert_eq!(total, 10 + 20 + 30 + 40 + 50);
    }

    #[test]
    fn priorities_decrease_along_chain() {
        let mut g = TaskGraph::new();
        g.add_task("a", [Access::Write(0)], || {});
        g.add_task("b", [Access::Write(0)], || {});
        g.add_task("c", [Access::Write(0)], || {});
        let fin = g.finalize();
        assert!(fin.priority[0] > fin.priority[1]);
        assert!(fin.priority[1] > fin.priority[2]);
    }
}
