//! Property test: any parallel schedule of a task graph produces the same
//! result as sequential execution — the defining guarantee of superscalar
//! dataflow runtimes.

use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;
use xsc_runtime::{Access, Executor, SchedPolicy, TaskGraph};

/// A randomly generated "program": each task touches 1–3 data slots and
/// applies a non-commutative update to each (so any reordering of
/// conflicting tasks changes the result).
#[derive(Debug, Clone)]
struct ProgramTask {
    accesses: Vec<(usize, bool)>, // (datum, is_write)
    coeff: i64,
}

fn program_strategy(num_data: usize, max_tasks: usize) -> impl Strategy<Value = Vec<ProgramTask>> {
    let task = (
        proptest::collection::vec((0..num_data, any::<bool>()), 1..=3),
        1..7i64,
    )
        .prop_map(|(accesses, coeff)| ProgramTask { accesses, coeff });
    proptest::collection::vec(task, 1..=max_tasks)
}

fn build_graph(program: &[ProgramTask], data: &[Arc<Mutex<i64>>]) -> TaskGraph {
    let mut g = TaskGraph::new();
    for (i, t) in program.iter().enumerate() {
        let mut accesses = Vec::new();
        // Deduplicate per-task data (a task may not read and write the same
        // slot twice in this model); keep the strongest access.
        let mut per_datum: std::collections::BTreeMap<usize, bool> = Default::default();
        for &(d, w) in &t.accesses {
            let e = per_datum.entry(d).or_insert(false);
            *e = *e || w;
        }
        let mut touched: Vec<(usize, bool)> = per_datum.into_iter().collect();
        touched.sort_unstable();
        for &(d, w) in &touched {
            accesses.push(if w { Access::Write(d) } else { Access::Read(d) });
        }
        let handles: Vec<(Arc<Mutex<i64>>, bool)> = touched
            .iter()
            .map(|&(d, w)| (Arc::clone(&data[d]), w))
            .collect();
        let coeff = t.coeff;
        g.add_task(format!("t{i}"), accesses, move || {
            // Reads feed into the writes, writes apply a non-commutative map.
            let mut acc = 0i64;
            for (h, w) in &handles {
                if !*w {
                    acc = acc.wrapping_add(*h.lock());
                }
            }
            for (h, w) in &handles {
                if *w {
                    let mut v = h.lock();
                    *v = v.wrapping_mul(coeff).wrapping_add(acc).wrapping_add(1);
                }
            }
        });
    }
    g
}

fn run(program: &[ProgramTask], parallel: Option<(usize, SchedPolicy)>) -> Vec<i64> {
    let data: Vec<Arc<Mutex<i64>>> = (0..8).map(|i| Arc::new(Mutex::new(i as i64 + 1))).collect();
    let g = build_graph(program, &data);
    match parallel {
        None => g.execute_serial(),
        Some((threads, policy)) => {
            Executor::new(threads, policy).execute(g);
        }
    }
    data.iter().map(|d| *d.lock()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_equals_serial(program in program_strategy(8, 40)) {
        let serial = run(&program, None);
        for threads in [2usize, 4, 8] {
            for policy in [SchedPolicy::Fifo, SchedPolicy::CriticalPath] {
                let par = run(&program, Some((threads, policy)));
                prop_assert_eq!(&par, &serial,
                    "schedule with {} threads / {:?} diverged", threads, policy);
            }
        }
    }
}

#[test]
fn large_random_program_smoke() {
    // A deterministic large program exercising queue contention.
    let program: Vec<ProgramTask> = (0..400)
        .map(|i| ProgramTask {
            accesses: vec![(i % 8, i % 3 == 0), ((i * 5 + 1) % 8, i % 2 == 0)],
            coeff: (i % 5) as i64 + 1,
        })
        .collect();
    let serial = run(&program, None);
    let par = run(&program, Some((8, SchedPolicy::CriticalPath)));
    assert_eq!(par, serial);
}
