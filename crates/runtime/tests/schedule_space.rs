//! Tier-1 schedule-space gate: exhaustively model-check the work-stealing
//! protocol on small task graphs, and prove the checker itself can still
//! see bugs by running it on deliberately corrupted protocol variants.
//!
//! Configurations here are chosen to stay under ~200k states each so the
//! whole file finishes in seconds in a debug build; the full sweep (every
//! standard graph × 1..=4 workers × all policies, millions of states) runs
//! in CI via `xsc-lint check-schedules`.

use xsc_runtime::schedule_check::{check, standard_specs, GraphSpec, Protocol, DEFAULT_STATE_CAP};
use xsc_runtime::SchedPolicy;

const POLICIES: [SchedPolicy; 3] = [
    SchedPolicy::Fifo,
    SchedPolicy::CriticalPath,
    SchedPolicy::Explicit,
];

/// Checks one configuration and asserts it is exhaustively clean.
fn assert_clean(spec: &GraphSpec, workers: usize, policy: SchedPolicy) {
    let report = check(spec, workers, policy, Protocol::Correct, DEFAULT_STATE_CAP);
    assert!(
        report.violation.is_none(),
        "{}",
        report
            .violation
            .as_ref()
            .map(|v| format!(
                "{} w={workers} {policy:?}: {} — trace:\n  {}",
                spec.name,
                v.kind(),
                v.trace().join("\n  ")
            ))
            .unwrap_or_default()
    );
    // Bit-identity means every schedule funnels into the one serial
    // outcome: the terminal state is unique.
    assert_eq!(
        report.terminals, 1,
        "{} w={workers} {policy:?}: expected a unique terminal state",
        spec.name
    );
    assert!(report.states >= spec.n as u64);
}

#[test]
fn every_standard_graph_is_clean_at_one_and_two_workers() {
    // Broad coverage: all eight standard graphs, all policies, w <= 2.
    // Largest configuration is ~2.5k states — essentially free.
    for spec in standard_specs() {
        for workers in [1, 2] {
            for policy in POLICIES {
                assert_clean(&spec, workers, policy);
            }
        }
    }
}

#[test]
fn diamond_is_clean_up_to_four_workers() {
    // The diamond (fork + join through shared data) at full worker count:
    // 63,285 states at w=4 — the densest all-workers config that stays
    // debug-feasible.
    let spec = GraphSpec::diamond();
    for workers in [3, 4] {
        for policy in [SchedPolicy::Fifo, SchedPolicy::CriticalPath] {
            assert_clean(&spec, workers, policy);
        }
    }
}

#[test]
fn serial_chain_is_clean_at_three_workers() {
    // Two workers must idle/sleep while one runs the chain: stresses the
    // sleep/wake path harder than any parallel graph (20,908 states).
    assert_clean(&GraphSpec::chain(8), 3, SchedPolicy::Fifo);
}

#[test]
fn random_dependence_graph_is_clean_at_three_workers() {
    // The widest standard graph at w=3 (~103k states); w=4 (~4.6M) is
    // covered by the CI sweep.
    assert_clean(&GraphSpec::seeded_random(7, 1), 3, SchedPolicy::Fifo);
}

#[test]
fn affinity_chains_are_clean_at_three_workers() {
    // Two affine chains on three workers: steals must respect affinity
    // preference without ever losing a wakeup (78,313 states).
    assert_clean(&GraphSpec::two_chains_affine(4), 3, SchedPolicy::Fifo);
}

/// The checker is only trustworthy if it can still find bugs: every
/// deliberately corrupted protocol variant must produce its documented
/// violation on the diamond graph.
#[test]
fn corrupted_protocols_are_caught() {
    let spec = GraphSpec::diamond();
    for (protocol, expected) in [
        // Sleeping without re-checking the finished flag loses the final
        // wakeup race: a worker can sleep forever after the last task.
        (Protocol::NoFinishedRecheck, "deadlock"),
        // Never waking sleepers at completion strands every parked worker.
        (Protocol::SkipFinalWake, "deadlock"),
        // Waking only ONE sleeper at completion strands the others —
        // the classic notify_one-vs-notify_all bug.
        (Protocol::NotifyOneFinal, "deadlock"),
        // Publishing successors before executing the task lets a
        // dependent run ahead of its predecessor.
        (Protocol::EagerRelease, "order-violation"),
    ] {
        let report = check(&spec, 3, SchedPolicy::Fifo, protocol, DEFAULT_STATE_CAP);
        let kind = report.violation.as_ref().map_or("ok", |v| v.kind());
        assert_eq!(
            kind, expected,
            "{protocol:?} on diamond w=3 should be caught as {expected}, got {kind}"
        );
        // Counterexamples come with a replayable interleaving.
        assert!(
            !report.violation.as_ref().unwrap().trace().is_empty(),
            "{protocol:?}: violation must carry a trace"
        );
    }
}

/// Dropping the under-lock queue re-check before sleeping is PROVEN
/// benign by exhaustive search: workers drain their own queue before
/// scanning, only the owner pushes to it, and the completion wake rescues
/// any late sleeper. The re-check in `executor.rs` is defense-in-depth,
/// not a correctness requirement — this test documents that as a
/// model-checking result, and pins it so a future protocol change that
/// *does* make the re-check load-bearing gets noticed.
#[test]
fn missing_queue_recheck_is_provably_benign() {
    let spec = GraphSpec::diamond();
    for workers in [2, 3, 4] {
        let report = check(
            &spec,
            workers,
            SchedPolicy::Fifo,
            Protocol::NoQueueRecheck,
            DEFAULT_STATE_CAP,
        );
        assert!(
            report.violation.is_none(),
            "NoQueueRecheck diamond w={workers}: expected clean, got {}",
            report.summary()
        );
    }
}

/// A graph whose same-datum writers are NOT dependence-ordered must be
/// caught as a bit-divergence: the executor guarantees bit-identical
/// results only for programs whose conflicting writes are ordered, and
/// the checker enforces exactly that boundary.
#[test]
fn unordered_writers_are_caught_as_bit_divergence() {
    let report = check(
        &GraphSpec::unordered_writers(),
        2,
        SchedPolicy::Fifo,
        Protocol::Correct,
        DEFAULT_STATE_CAP,
    );
    match &report.violation {
        Some(v) if v.kind() == "bit-divergence" => {}
        other => panic!("expected bit-divergence, got {other:?}"),
    }
}

/// The state cap is a reported failure, never a silent truncation.
#[test]
fn state_cap_overflow_is_reported() {
    let report = check(
        &GraphSpec::seeded_random(7, 1),
        3,
        SchedPolicy::Fifo,
        Protocol::Correct,
        1_000, // far below the ~103k true size
    );
    match &report.violation {
        Some(v) if v.kind() == "state-space-exceeded" => {}
        other => panic!("expected state-space-exceeded, got {other:?}"),
    }
}
