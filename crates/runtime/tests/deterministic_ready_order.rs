//! Regression tests for lint rule D01's motivating hazard: the task
//! graph's per-datum dependence state used to live in a `HashMap`, whose
//! iteration order is randomized per process. Nothing iterates that map
//! *today*, but one innocent `for (datum, state) in &self.state` would
//! have silently made ready-task order — and with it every trace and
//! chaos-campaign summary — nondeterministic. The state now lives in a
//! `BTreeMap`; these tests pin the observable contract: identical
//! programs produce identical edge lists and, on one worker, identical
//! execution order, run after run.

use parking_lot::Mutex;
use std::sync::Arc;
use xsc_runtime::{Access, Executor, SchedPolicy, TaskGraph};

/// A wide, irregular program touching many data ids (enough that a
/// hash-ordered scan would almost surely differ from insertion order).
fn build_wide_graph(log: &Arc<Mutex<Vec<usize>>>) -> TaskGraph {
    let mut g = TaskGraph::new();
    for t in 0..120usize {
        // Scatter accesses across 60 data ids with deliberately
        // non-monotone datum numbering.
        let d1 = (t * 37) % 60;
        let d2 = (t * 53 + 11) % 60;
        let log = Arc::clone(log);
        g.add_task_with_cost(
            format!("t{t}"),
            [Access::Read(d1), Access::Write(d2)],
            1 + (t as u64 % 7),
            move || log.lock().push(t),
        );
    }
    g
}

#[test]
fn edge_lists_are_identical_across_builds() {
    let log_a = Arc::new(Mutex::new(Vec::new()));
    let log_b = Arc::new(Mutex::new(Vec::new()));
    let mut a = build_wide_graph(&log_a);
    let mut b = build_wide_graph(&log_b);
    assert_eq!(a.edge_list(), b.edge_list());
}

#[test]
fn single_worker_execution_order_is_reproducible() {
    let reference: Option<Vec<usize>> = None;
    let mut reference = reference;
    for _ in 0..5 {
        let log = Arc::new(Mutex::new(Vec::new()));
        let g = build_wide_graph(&log);
        Executor::new(1, SchedPolicy::CriticalPath).execute(g);
        let order = log.lock().clone();
        assert_eq!(order.len(), 120);
        match &reference {
            None => reference = Some(order),
            Some(r) => assert_eq!(&order, r, "ready-task order changed between runs"),
        }
    }
}

#[test]
fn fifo_single_worker_runs_in_program_order() {
    let log = Arc::new(Mutex::new(Vec::new()));
    let g = build_wide_graph(&log);
    Executor::new(1, SchedPolicy::Fifo).execute(g);
    let order = log.lock().clone();
    // FIFO on one worker with forward-only edges is exactly program order.
    assert_eq!(order, (0..120).collect::<Vec<_>>());
}
