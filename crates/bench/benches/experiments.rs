//! `cargo bench -p xsc-bench --bench experiments` — regenerates every
//! table/figure of the reproduction in one pass (E01–E12). Sizes come from
//! `XSC_SCALE` (`quick` default, `full` for the paper-shaped runs).

fn main() {
    // Criterion-style CLI flags (e.g. `--bench`) are accepted and ignored.
    let scale = xsc_bench::Scale::from_env();
    println!("xsc experiment suite (scale: {scale:?}) — one section per reproduced table/figure");
    xsc_bench::experiments::run_all(scale);
    println!("\nAll experiments completed. Claimed-vs-measured record: EXPERIMENTS.md");
}
