//! Criterion microbenchmarks for the node-level kernels every experiment
//! builds on: GEMM, tiled Cholesky (both engines), SpMV, SymGS, batched
//! GEMM, and the mixed-precision solve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xsc_batched::{batched_gemm, Batch};
use xsc_core::gemm::{gemm, par_gemm, Transpose};
use xsc_core::{flops, gen, Matrix, TileMatrix};
use xsc_dense::cholesky;
use xsc_precision::ir::lu_ir_solve;
use xsc_runtime::{Executor, SchedPolicy};
use xsc_sparse::stencil::{build_matrix, build_rhs, Geometry};
use xsc_sparse::symgs::symgs;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(10);
    for n in [128usize, 256] {
        let a = gen::random_matrix::<f64>(n, n, 1);
        let b = gen::random_matrix::<f64>(n, n, 2);
        let mut out = Matrix::<f64>::zeros(n, n);
        group.throughput(Throughput::Elements(flops::gemm(n, n, n)));
        group.bench_with_input(BenchmarkId::new("seq", n), &n, |bch, _| {
            bch.iter(|| gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, &mut out));
        });
        group.bench_with_input(BenchmarkId::new("par", n), &n, |bch, _| {
            bch.iter(|| par_gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, &mut out));
        });
    }
    group.finish();
}

fn bench_cholesky(c: &mut Criterion) {
    let mut group = c.benchmark_group("cholesky_tiled");
    group.sample_size(10);
    let n = 512;
    let nb = 64;
    let a = gen::random_spd::<f64>(n, 3);
    let exec = Executor::with_all_cores(SchedPolicy::CriticalPath);
    group.throughput(Throughput::Elements(flops::cholesky(n)));
    group.bench_function("dag", |bch| {
        bch.iter(|| {
            let tiles = TileMatrix::from_matrix(&a, nb);
            cholesky::cholesky_dag(&tiles, &exec).unwrap();
        });
    });
    group.bench_function("forkjoin", |bch| {
        bch.iter(|| {
            let tiles = TileMatrix::from_matrix(&a, nb);
            cholesky::cholesky_forkjoin(&tiles).unwrap();
        });
    });
    group.finish();
}

fn bench_sparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse");
    group.sample_size(10);
    let g = Geometry::new(32, 32, 32);
    let a = build_matrix(g);
    let (b, _) = build_rhs(&a);
    let x: Vec<f64> = (0..a.nrows()).map(|i| (i % 7) as f64).collect();
    let mut y = vec![0.0; a.nrows()];
    group.throughput(Throughput::Elements(flops::spmv(a.nnz())));
    group.bench_function("spmv_seq", |bch| bch.iter(|| a.spmv(&x, &mut y)));
    group.bench_function("spmv_par", |bch| bch.iter(|| a.spmv_par(&x, &mut y)));
    let mut xs = vec![0.0; a.nrows()];
    group.bench_function("symgs", |bch| bch.iter(|| symgs(&a, &b, &mut xs)));
    group.finish();
}

fn bench_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_gemm_8x8");
    group.sample_size(10);
    let count = 10_000;
    let a = Batch::<f64>::from_fn(8, 8, count, |k, i, j| ((k + i + j) % 5) as f64);
    let b = a.clone();
    let mut out = Batch::<f64>::zeros(8, 8, count);
    group.throughput(Throughput::Elements(flops::gemm(8, 8, 8) * count as u64));
    group.bench_function("batched", |bch| {
        bch.iter(|| batched_gemm(1.0, &a, &b, 0.0, &mut out));
    });
    group.finish();
}

fn bench_mixed_precision(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve_256");
    group.sample_size(10);
    let n = 256;
    let a = gen::diag_dominant::<f64>(n, 5);
    let b = gen::rhs_for_unit_solution(&a);
    group.bench_function("f64_direct", |bch| {
        bch.iter(|| xsc_precision::ir::full_f64_solve(&a, &b).unwrap());
    });
    group.bench_function("f32_ir", |bch| {
        bch.iter(|| lu_ir_solve::<f32>(&a, &b, 30, None).unwrap());
    });
    group.finish();
}

fn bench_tsqr(c: &mut Criterion) {
    let mut group = c.benchmark_group("tall_skinny_qr_50000x16");
    group.sample_size(10);
    let a = gen::random_matrix::<f64>(50_000, 16, 7);
    group.bench_function("tsqr_16_leaves", |bch| {
        bch.iter(|| xsc_dense::tsqr::tsqr(&a, 50_000 / 16));
    });
    group.bench_function("flat_householder", |bch| {
        bch.iter(|| xsc_dense::tsqr::flat_qr_r(&a));
    });
    group.finish();
}

fn bench_abft(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_256_protection");
    group.sample_size(10);
    let a = gen::random_matrix::<f64>(256, 256, 8);
    let b = gen::random_matrix::<f64>(256, 256, 9);
    let mut out = Matrix::<f64>::zeros(256, 256);
    group.bench_function("plain", |bch| {
        bch.iter(|| gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, &mut out));
    });
    group.bench_function("abft_protected", |bch| {
        bch.iter(|| xsc_ft::abft::abft_gemm(&a, &b, |_| {}));
    });
    group.finish();
}

fn bench_krylov_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("cg_variants_12cubed");
    group.sample_size(10);
    let g = Geometry::new(12, 12, 12);
    let a = build_matrix(g);
    let (mut b, _) = build_rhs(&a);
    for (i, v) in b.iter_mut().enumerate() {
        *v += ((i * 97) % 41) as f64 / 41.0 - 0.5;
    }
    group.bench_function("classic", |bch| {
        bch.iter(|| {
            let mut x = vec![0.0; a.nrows()];
            xsc_sparse::pcg(&a, &b, &mut x, 500, 1e-9, &xsc_sparse::Identity)
        });
    });
    group.bench_function("pipelined", |bch| {
        bch.iter(|| {
            let mut x = vec![0.0; a.nrows()];
            xsc_sparse::pipelined_cg(&a, &b, &mut x, 500, 1e-9)
        });
    });
    group.bench_function("s_step_4", |bch| {
        bch.iter(|| {
            let mut x = vec![0.0; a.nrows()];
            xsc_sparse::sstep::s_step_cg(&a, &b, &mut x, 4, 500, 1e-9)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_cholesky,
    bench_sparse,
    bench_batched,
    bench_mixed_precision,
    bench_tsqr,
    bench_abft,
    bench_krylov_variants
);
criterion_main!(benches);
