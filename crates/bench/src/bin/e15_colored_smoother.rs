//! Standalone driver for experiment `e15_colored_smoother` (see DESIGN.md's index).
fn main() {
    xsc_bench::experiments::e15_colored_smoother::run(xsc_bench::Scale::from_env());
}
