//! Standalone driver for experiment `e01_hpl_vs_hpcg` (see DESIGN.md's index).
//! Pass `--json` to also write a machine-readable `BENCH_e01.json`.
fn main() {
    xsc_bench::experiments::e01_hpl_vs_hpcg::run_opts(
        xsc_bench::Scale::from_env(),
        xsc_bench::json::json_flag(),
    );
}
