//! Standalone driver for experiment `e01_hpl_vs_hpcg` (see DESIGN.md's index).
fn main() {
    xsc_bench::experiments::e01_hpl_vs_hpcg::run(xsc_bench::Scale::from_env());
}
