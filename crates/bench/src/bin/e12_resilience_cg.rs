//! Standalone driver for experiment `e12_resilience_cg` (see DESIGN.md's
//! index). Pass `--json` to also write a machine-readable `BENCH_e12.json`.
fn main() {
    xsc_bench::experiments::e12_resilience_cg::run_opts(
        xsc_bench::Scale::from_env(),
        xsc_bench::json::json_flag(),
    );
}
