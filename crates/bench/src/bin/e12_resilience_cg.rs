//! Standalone driver for experiment `e12_resilience_cg` (see DESIGN.md's index).
fn main() {
    xsc_bench::experiments::e12_resilience_cg::run(xsc_bench::Scale::from_env());
}
