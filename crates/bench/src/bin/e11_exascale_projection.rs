//! Standalone driver for experiment `e11_exascale_projection` (see DESIGN.md's index).
fn main() {
    xsc_bench::experiments::e11_exascale_projection::run(xsc_bench::Scale::from_env());
}
