//! Standalone driver for experiment `e13_sync_reducing` (see DESIGN.md's index).
fn main() {
    xsc_bench::experiments::e13_sync_reducing::run(xsc_bench::Scale::from_env());
}
