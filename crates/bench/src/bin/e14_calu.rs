//! Standalone driver for experiment `e14_calu` (see DESIGN.md's index).
fn main() {
    xsc_bench::experiments::e14_calu::run(xsc_bench::Scale::from_env());
}
