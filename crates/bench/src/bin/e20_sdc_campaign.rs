//! Standalone driver for experiment `e20_sdc_campaign` (see DESIGN.md's
//! index). Pass `--json` to also write a machine-readable `BENCH_e20.json`.
fn main() {
    xsc_bench::experiments::e20_sdc_campaign::run_opts(
        xsc_bench::Scale::from_env(),
        xsc_bench::json::json_flag(),
    );
}
