//! Standalone driver for experiment `e09_rbt` (see DESIGN.md's index).
fn main() {
    xsc_bench::experiments::e09_rbt::run(xsc_bench::Scale::from_env());
}
