//! Standalone driver for experiment `e16_comm_optimal` (see DESIGN.md's index).
fn main() {
    xsc_bench::experiments::e16_comm_optimal::run(xsc_bench::Scale::from_env());
}
