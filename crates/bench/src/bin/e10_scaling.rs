//! Standalone driver for experiment `e10_scaling` (see DESIGN.md's index).
//! Pass `--json` to also write a machine-readable `BENCH_e10.json`.
fn main() {
    xsc_bench::experiments::e10_scaling::run_opts(
        xsc_bench::Scale::from_env(),
        xsc_bench::json::json_flag(),
    );
}
