//! Standalone driver for experiment `e10_scaling` (see DESIGN.md's index).
fn main() {
    xsc_bench::experiments::e10_scaling::run(xsc_bench::Scale::from_env());
}
