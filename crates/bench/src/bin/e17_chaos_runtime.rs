//! Standalone driver for experiment `e17_chaos_runtime` (see DESIGN.md's index).
fn main() {
    xsc_bench::experiments::e17_chaos_runtime::run(xsc_bench::Scale::from_env());
}
