//! Standalone driver for experiment `e17_chaos_runtime` (see DESIGN.md's
//! index). Pass `--json` to also write a machine-readable `BENCH_e17.json`.
fn main() {
    xsc_bench::experiments::e17_chaos_runtime::run_opts(
        xsc_bench::Scale::from_env(),
        xsc_bench::json::json_flag(),
    );
}
