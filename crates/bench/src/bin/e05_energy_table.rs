//! Standalone driver for experiment `e05_energy_table` (see DESIGN.md's index).
fn main() {
    xsc_bench::experiments::e05_energy_table::run(xsc_bench::Scale::from_env());
}
