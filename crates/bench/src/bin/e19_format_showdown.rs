//! Standalone driver for experiment `e19_format_showdown` (see DESIGN.md's
//! index). Pass `--json` to also write a machine-readable `BENCH_e19.json`.
fn main() {
    xsc_bench::experiments::e19_format_showdown::run_opts(
        xsc_bench::Scale::from_env(),
        xsc_bench::json::json_flag(),
    );
}
