//! Standalone driver for experiment `e03_mixed_precision` (see DESIGN.md's index).
fn main() {
    xsc_bench::experiments::e03_mixed_precision::run(xsc_bench::Scale::from_env());
}
