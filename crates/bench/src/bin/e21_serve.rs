//! Standalone driver for experiment `e21_serve` (see DESIGN.md's
//! index). Pass `--json` to also write a machine-readable `BENCH_e21.json`.
fn main() {
    xsc_bench::experiments::e21_serve::run_opts(
        xsc_bench::Scale::from_env(),
        xsc_bench::json::json_flag(),
    );
}
