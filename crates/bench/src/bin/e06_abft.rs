//! Standalone driver for experiment `e06_abft` (see DESIGN.md's index).
fn main() {
    xsc_bench::experiments::e06_abft::run(xsc_bench::Scale::from_env());
}
