//! Standalone driver for experiment `e18_roofline` (see DESIGN.md's index).
//! Pass `--json` to also write a machine-readable `BENCH_roofline.json`.
fn main() {
    xsc_bench::experiments::e18_roofline::run_opts(
        xsc_bench::Scale::from_env(),
        xsc_bench::json::json_flag(),
    );
}
