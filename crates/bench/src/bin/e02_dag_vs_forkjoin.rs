//! Standalone driver for experiment `e02_dag_vs_forkjoin` (see DESIGN.md's index).
fn main() {
    xsc_bench::experiments::e02_dag_vs_forkjoin::run(xsc_bench::Scale::from_env());
}
