//! Standalone driver for experiment `e07_batched` (see DESIGN.md's index).
fn main() {
    xsc_bench::experiments::e07_batched::run(xsc_bench::Scale::from_env());
}
