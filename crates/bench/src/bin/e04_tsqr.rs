//! Standalone driver for experiment `e04_tsqr` (see DESIGN.md's index).
fn main() {
    xsc_bench::experiments::e04_tsqr::run(xsc_bench::Scale::from_env());
}
