//! Standalone driver for experiment `e08_autotune` (see DESIGN.md's index).
fn main() {
    xsc_bench::experiments::e08_autotune::run(xsc_bench::Scale::from_env());
}
