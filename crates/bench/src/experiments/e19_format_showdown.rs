//! E19 — the bytes-per-nonzero showdown: identical HPCG iterations on
//! `usize` CSR, `Csr32`, and SELL-C-σ.
//!
//! The keynote's bandwidth-bound arithmetic says the only way to speed up
//! SpMV/SymGS is to move fewer bytes per nonzero. This experiment runs the
//! *same* solve on all three formats (every format folds rows in the same
//! order, so iterates are bit-identical), then compares the bytes each
//! format streamed — measured by the `xsc-metrics` counters and checked
//! against the analytic models. The correctness assertions (identical
//! iteration counts, residual histories within 1e-12, compact formats at
//! least 1.5× leaner on measured B/nnz) are deterministic, so CI fails on
//! real regressions rather than timing noise.
//!
//! Gather-policy note: the `usize` CSR records `x` reads per nonzero (the
//! legacy pessimal convention), the compact formats charge `x` streamed
//! once per sweep (the canonical-HPCG convention); the modeled columns
//! print both policies for every format so the assumptions stay visible.

use crate::json::{write_report, Json};
use crate::measured::kernel;
use crate::table::{f2, sci, secs, Table};
use crate::{best_of, Scale};
use xsc_metrics::traffic::{self, XGather};
use xsc_sparse::stencil::build_matrix;
use xsc_sparse::{run_hpcg_fmt, FormatMatrix, Geometry, SparseFormat, SparseOps};

/// Minimum factor by which the compact formats must beat the `usize` CSR
/// on measured SpMV bytes per nonzero (the PR's acceptance criterion).
pub const MIN_BYTES_RATIO: f64 = 1.5;

/// Tolerance on cross-format residual histories (expected delta: exactly
/// zero — the formats fold rows identically).
pub const HISTORY_TOL: f64 = 1e-12;

fn bytes_per_nnz(c: &xsc_metrics::KernelCounters) -> f64 {
    // Every sparse kernel records 2 flops per swept nonzero, so flops/2
    // normalizes across call counts and kernels.
    c.bytes() as f64 / (c.flops as f64 / 2.0).max(1.0)
}

/// Modeled SpMV bytes/nnz for `fmt` under an explicit gather policy.
fn modeled(fmt: &FormatMatrix, gather: XGather) -> f64 {
    let (n, nc, nnz) = (fmt.nrows(), fmt.ncols(), fmt.nnz());
    let t = match fmt {
        FormatMatrix::CsrUsize(_) => traffic::spmv_csr_gather(n, nc, nnz, 8, gather),
        FormatMatrix::Csr32(_) => traffic::spmv_csr32(n, nc, nnz, 8, gather),
        FormatMatrix::Sell(s) => {
            traffic::spmv_sell(n, nc, nnz, s.padded_slots(), s.nchunks(), 8, gather)
        }
    };
    (t.bytes_read + t.bytes_written) as f64 / nnz as f64
}

/// Runs the experiment and prints its tables.
pub fn run(scale: Scale) {
    run_opts(scale, false);
}

/// Runs the experiment; with `json` set, also writes `BENCH_e19.json`.
pub fn run_opts(scale: Scale, json: bool) {
    // --- Part 1: SpMV microbenchmark -----------------------------------
    let g = scale.pick(32usize, 64);
    let geom = Geometry::new(g, g, g);
    let a_csr = build_matrix(geom);
    let reps = scale.pick(3, 5);
    let sweeps = scale.pick(10, 20);
    let n = a_csr.nrows();
    let x: Vec<f64> = (0..n).map(|i| ((i * 29 % 97) as f64).sin()).collect();

    println!(
        "\n[E19] bytes-per-nnz showdown on the {g}^3 stencil (nnz = {})",
        a_csr.nnz()
    );

    let mut t = Table::new(&[
        "format",
        "B/nnz model (streamed x)",
        "B/nnz model (per-nnz x)",
        "B/nnz measured",
        "time/SpMV",
        "eff GB/s",
        "speedup",
    ]);
    let mut spmv_rows = Vec::new();
    let mut y_ref: Option<Vec<f64>> = None;
    let mut base_time = 0.0f64;
    let mut spmv_measured = Vec::new();
    for fmt in SparseFormat::all() {
        let m = FormatMatrix::convert(a_csr.clone(), fmt).expect("stencil fits u32 indices");
        let mut y = vec![0.0; n];
        let (_, delta) = xsc_metrics::measure(|| m.spmv_par(&x, &mut y));
        match &y_ref {
            None => y_ref = Some(y.clone()),
            Some(r) => assert_eq!(&y, r, "{fmt}: SpMV must be bit-identical across formats"),
        }
        let meas = bytes_per_nnz(&kernel(&delta, "spmv"));
        let per_sweep = best_of(reps, || {
            for _ in 0..sweeps {
                m.spmv_par(&x, &mut y);
            }
        }) / sweeps as f64;
        if fmt == SparseFormat::CsrUsize {
            base_time = per_sweep;
        }
        let gbs = meas * m.nnz() as f64 / per_sweep / 1e9;
        t.row(vec![
            fmt.name().into(),
            f2(modeled(&m, XGather::Streamed)),
            f2(modeled(&m, XGather::PerNnz)),
            f2(meas),
            secs(per_sweep),
            f2(gbs),
            format!("{:.2}x", base_time / per_sweep),
        ]);
        spmv_measured.push((fmt, meas));
        spmv_rows.push(Json::obj(vec![
            ("format", Json::s(fmt.name())),
            (
                "modeled_bytes_per_nnz_streamed",
                Json::Num(modeled(&m, XGather::Streamed)),
            ),
            (
                "modeled_bytes_per_nnz_per_nnz_gather",
                Json::Num(modeled(&m, XGather::PerNnz)),
            ),
            ("measured_bytes_per_nnz", Json::Num(meas)),
            ("seconds_per_spmv", Json::Num(per_sweep)),
            ("effective_gbs", Json::Num(gbs)),
            ("speedup_vs_csr_usize", Json::Num(base_time / per_sweep)),
        ]));
    }
    t.print(&format!("E19a: SpMV formats on the {g}^3 stencil"));

    // --- Part 2: identical HPCG runs on all three formats --------------
    let g2 = scale.pick(24usize, 48);
    let geom2 = Geometry::new(g2, g2, g2);
    let iters = scale.pick(25, 50);
    let mut t2 = Table::new(&[
        "format",
        "iters",
        "final residual",
        "Gflop/s",
        "spmv B/nnz",
        "symgs B/nnz",
        "leaner than usize CSR",
    ]);
    let mut hpcg_rows = Vec::new();
    let mut runs = Vec::new();
    for fmt in SparseFormat::all() {
        let (r, delta) = xsc_metrics::measure(|| run_hpcg_fmt(geom2, 3, iters, fmt));
        let spmv = bytes_per_nnz(&kernel(&delta, "spmv"));
        let symgs = bytes_per_nnz(&kernel(&delta, "symgs"));
        runs.push((fmt, r, spmv, symgs));
    }
    let (_, base, base_spmv, _) = &runs[0];
    for (fmt, r, spmv, symgs) in &runs {
        // Smoke assertions: correctness, not timing.
        assert_eq!(
            r.iterations, base.iterations,
            "{fmt}: HPCG iteration count diverged"
        );
        let max_delta = r
            .residual_history
            .iter()
            .zip(base.residual_history.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_delta <= HISTORY_TOL,
            "{fmt}: residual history diverged by {max_delta:e}"
        );
        let ratio = base_spmv / spmv;
        if *fmt != SparseFormat::CsrUsize {
            assert!(
                ratio >= MIN_BYTES_RATIO,
                "{fmt}: measured spmv bytes/nnz only {ratio:.2}x leaner than usize CSR \
                 (need >= {MIN_BYTES_RATIO}x)"
            );
        }
        t2.row(vec![
            fmt.name().into(),
            r.iterations.to_string(),
            sci(r.final_residual),
            f2(r.gflops),
            f2(*spmv),
            f2(*symgs),
            format!("{ratio:.2}x"),
        ]);
        hpcg_rows.push(Json::obj(vec![
            ("format", Json::s(fmt.name())),
            ("grid", Json::Int(g2 as i64)),
            ("iterations", Json::Int(r.iterations as i64)),
            ("final_residual", Json::Num(r.final_residual)),
            ("gflops", Json::Num(r.gflops)),
            ("seconds", Json::Num(r.seconds)),
            ("measured_spmv_bytes_per_nnz", Json::Num(*spmv)),
            ("measured_symgs_bytes_per_nnz", Json::Num(*symgs)),
            ("spmv_bytes_ratio_vs_csr_usize", Json::Num(ratio)),
            ("max_history_delta_vs_csr_usize", Json::Num(max_delta)),
            ("passed", Json::Bool(r.passed)),
        ]));
    }
    t2.print(&format!(
        "E19b: identical {iters}-iteration HPCG runs on the {g2}^3 stencil"
    ));
    println!("  keynote claim: these kernels are bandwidth-bound, so B/nnz IS the");
    println!("  attained rate. Compact indices halve the matrix stream (~24 -> ~13 B/nnz");
    println!("  under each format's recording convention); iterates stay bit-identical,");
    println!("  so the formats are freely interchangeable behind SparseOps.");
    println!(
        "  smoke checks passed: iterations identical, histories within {HISTORY_TOL:e}, \
         compact formats >= {MIN_BYTES_RATIO}x leaner (measured)."
    );
    if json {
        let report = Json::obj(vec![
            ("experiment", Json::s("e19_format_showdown")),
            ("min_bytes_ratio", Json::Num(MIN_BYTES_RATIO)),
            ("history_tolerance", Json::Num(HISTORY_TOL)),
            ("spmv", Json::Arr(spmv_rows)),
            ("hpcg", Json::Arr(hpcg_rows)),
        ]);
        write_report("BENCH_e19.json", &report);
    }
}
