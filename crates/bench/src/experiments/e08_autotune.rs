//! E08 — autotuning: kernel performance is a non-monotone function of
//! blocking parameters, so the tiled-Cholesky tile size and the blocked
//! GEMM's configuration — cache parameters (`MC`/`KC`/`NC`) *and*
//! micro-kernel variant — are *searched for*, and the GEMM winner is
//! installed globally for the rest of the process.

use crate::table::{f2, secs, Table};
use crate::Scale;
use xsc_autotune::gemm_tune::{self, tune_gemm_config};
use xsc_autotune::{exhaustive, hill_climb, median_of};
use xsc_core::{flops, gen, GemmParams, MicroKernel, TileMatrix};
use xsc_dense::cholesky;
use xsc_runtime::{Executor, SchedPolicy};

/// Median-of-3 timing of a tiled Cholesky at tile size `nb`.
fn measure(a: &xsc_core::Matrix<f64>, nb: usize, exec: &Executor) -> f64 {
    median_of(3, || {
        let tiles = TileMatrix::from_matrix(a, nb);
        let t = std::time::Instant::now();
        cholesky::cholesky_dag(&tiles, exec).unwrap();
        t.elapsed().as_secs_f64()
    })
}

/// Runs the experiment and prints its table.
pub fn run(scale: Scale) {
    let n = scale.pick(768, 1536);
    let a = gen::random_spd::<f64>(n, 21);
    let exec = Executor::with_all_cores(SchedPolicy::CriticalPath);
    let candidates: Vec<usize> = vec![16, 24, 32, 48, 64, 96, 128, 192, 256, 384];

    let sweep = exhaustive(&candidates, |nb| measure(&a, nb, &exec));
    let mut t = Table::new(&["tile size nb", "time", "Gflop/s", "winner"]);
    for &(nb, cost) in &sweep.samples {
        t.row(vec![
            nb.to_string(),
            secs(cost),
            f2(flops::gflops(flops::cholesky(n), cost)),
            if nb == sweep.best {
                "<-- best".into()
            } else {
                String::new()
            },
        ]);
    }
    t.print(&format!("E08: tile-size sweep, tiled DAG Cholesky n={n}"));

    let hc = hill_climb(&candidates, 20, |nb| measure(&a, nb, &exec));
    println!(
        "  hill-climb found nb={} in {} evaluations (exhaustive: {}), within {:.1}% of the sweep optimum",
        hc.best,
        hc.evaluations,
        sweep.evaluations,
        ((hc.best_cost / sweep.best_cost - 1.0) * 100.0).max(0.0)
    );
    println!("  keynote claim: kernel performance is a non-obvious function of blocking");
    println!("  parameters; autotuning search replaces hand-derived settings.");

    // Part 2: joint GEMM configuration sweep — cache blocking crossed with
    // every micro-kernel variant runnable on this CPU. All variants are
    // bit-identical, so the winner (installed process-wide for every
    // downstream gemm/par_gemm call) changes only speed, never results.
    let s = scale.pick(256, 512);
    let sweep = tune_gemm_config(s, scale.pick(1, 3), &[]);
    let gemm_flops = flops::gemm(s, s, s);
    let mut t = Table::new(&["MC", "KC", "NC", "kernel", "time", "Gflop/s", "winner"]);
    for &(cfg, cost) in &sweep.samples {
        t.row(vec![
            cfg.params.mc.to_string(),
            cfg.params.kc.to_string(),
            cfg.params.nc.to_string(),
            cfg.kernel.to_string(),
            secs(cost),
            f2(flops::gflops(gemm_flops, cost)),
            if cfg == sweep.best {
                "<-- best".into()
            } else {
                String::new()
            },
        ]);
    }
    t.print(&format!(
        "E08b: GEMM config sweep (MC/KC/NC x microkernel), dgemm {s}^3"
    ));
    let default_cost = sweep
        .samples
        .iter()
        .find(|(cfg, _)| cfg.params == GemmParams::DEFAULT && cfg.kernel == MicroKernel::Scalar)
        .map(|&(_, c)| c);
    gemm_tune::install(sweep.best);
    println!(
        "  installed {} globally ({:.2} Gflop/s{})",
        sweep.best,
        flops::gflops(gemm_flops, sweep.best_cost),
        default_cost
            .map(|c| format!(
                ", {:.1}% over the scalar hand-picked default",
                (c / sweep.best_cost - 1.0) * 100.0
            ))
            .unwrap_or_default()
    );
}
