//! E13 — synchronization-reducing Krylov methods: pipelined CG measured
//! live, plus the collective-cost model showing why one reduction phase per
//! iteration matters at scale.

use crate::table::{f2, sci, secs, Table};
use crate::{best_of, Scale};
use xsc_machine::{collective_time, Collective, KrylovIterModel, MachineModel};
use xsc_sparse::pipelined::pipelined_cg;
use xsc_sparse::sstep::s_step_cg;
use xsc_sparse::stencil::{build_matrix, build_rhs, Geometry};
use xsc_sparse::{pcg, Identity};

/// Runs the experiment and prints its tables.
pub fn run(scale: Scale) {
    let g = scale.pick(12, 24);
    let geom = Geometry::new(g, g, g);
    let a = build_matrix(geom);
    let (mut b, _) = build_rhs(&a);
    for (i, v) in b.iter_mut().enumerate() {
        *v += ((i * 97) % 41) as f64 / 41.0 - 0.5;
    }
    let reps = scale.pick(2, 3);

    // Live single-node comparison: same convergence, fewer dependent
    // reduction phases.
    let mut classic = None;
    let t_classic = best_of(reps, || {
        let mut x = vec![0.0; a.nrows()];
        classic = Some(pcg(&a, &b, &mut x, 1000, 1e-9, &Identity));
    });
    let classic = classic.unwrap();
    let mut piped = None;
    let t_piped = best_of(reps, || {
        let mut x = vec![0.0; a.nrows()];
        piped = Some(pipelined_cg(&a, &b, &mut x, 1000, 1e-9));
    });
    let piped = piped.unwrap();

    let mut t = Table::new(&[
        "method",
        "time",
        "iterations",
        "final residual",
        "reduction phases",
    ]);
    t.row(vec![
        "classic CG".into(),
        secs(t_classic),
        classic.iterations.to_string(),
        sci(classic.final_residual()),
        (2 * classic.iterations).to_string(),
    ]);
    t.row(vec![
        "pipelined CG".into(),
        secs(t_piped),
        piped.iterations.to_string(),
        sci(*piped.residual_history.last().unwrap()),
        piped.reduction_phases.to_string(),
    ]);
    let mut ca = None;
    let t_ca = best_of(reps, || {
        let mut x = vec![0.0; a.nrows()];
        ca = Some(s_step_cg(&a, &b, &mut x, 4, 500, 1e-9));
    });
    let ca = ca.unwrap();
    t.row(vec![
        "s-step CG (s=4)".into(),
        secs(t_ca),
        ca.iterations.to_string(),
        sci(*ca.residual_history.last().unwrap()),
        ca.outer_steps.to_string(),
    ]);
    t.print(&format!(
        "E13: classic vs pipelined vs s-step CG on the {g}^3 stencil (live)"
    ));

    // Scale model: price the reductions.
    let m = MachineModel::node_2016();
    let mut t2 = Table::new(&[
        "ranks",
        "allreduce (16B)",
        "classic CG iter",
        "pipelined iter",
        "s-step(4) iter",
        "pipelined speedup",
    ]);
    let local = 50e-6; // 50 µs of local work per iteration per rank
    for p in [16usize, 256, 4096, 65_536, 1 << 20] {
        let ar = collective_time(Collective::AllReduceRecursiveDoubling, &m, p, 16);
        let tc = KrylovIterModel::classic_cg(local).time_per_iteration(&m, p);
        let tp = KrylovIterModel::pipelined_cg(local).time_per_iteration(&m, p);
        let ts = KrylovIterModel::s_step_cg(local, 4).time_per_iteration(&m, p);
        t2.row(vec![
            p.to_string(),
            secs(ar),
            secs(tc),
            secs(tp),
            secs(ts),
            f2(tc / tp),
        ]);
    }
    t2.print("E13b: modeled time per CG iteration vs rank count (50us local work)");
    println!("  keynote claim: the two dependent allreduces in classic CG become the");
    println!("  bottleneck at scale; pipelined/s-step formulations hide or amortize them.");
}
