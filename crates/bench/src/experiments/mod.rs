//! One module per reproduced table/figure; see the experiment index in
//! `DESIGN.md` and the measured-vs-claimed record in `EXPERIMENTS.md`.

pub mod e01_hpl_vs_hpcg;
pub mod e02_dag_vs_forkjoin;
pub mod e03_mixed_precision;
pub mod e04_tsqr;
pub mod e05_energy_table;
pub mod e06_abft;
pub mod e07_batched;
pub mod e08_autotune;
pub mod e09_rbt;
pub mod e10_scaling;
pub mod e11_exascale_projection;
pub mod e12_resilience_cg;
pub mod e13_sync_reducing;
pub mod e14_calu;
pub mod e15_colored_smoother;
pub mod e16_comm_optimal;
pub mod e17_chaos_runtime;
pub mod e18_roofline;
pub mod e19_format_showdown;
pub mod e20_sdc_campaign;
pub mod e21_serve;

use crate::Scale;

/// Runs every experiment at the given scale (the `cargo bench` entry point).
pub fn run_all(scale: Scale) {
    e01_hpl_vs_hpcg::run(scale);
    e02_dag_vs_forkjoin::run(scale);
    e03_mixed_precision::run(scale);
    e04_tsqr::run(scale);
    e05_energy_table::run(scale);
    e06_abft::run(scale);
    e07_batched::run(scale);
    e08_autotune::run(scale);
    e09_rbt::run(scale);
    e10_scaling::run(scale);
    e11_exascale_projection::run(scale);
    e12_resilience_cg::run(scale);
    e13_sync_reducing::run(scale);
    e14_calu::run(scale);
    e15_colored_smoother::run(scale);
    e16_comm_optimal::run(scale);
    e17_chaos_runtime::run(scale);
    e18_roofline::run(scale);
    e19_format_showdown::run(scale);
    e20_sdc_campaign::run(scale);
    e21_serve::run(scale);
}
