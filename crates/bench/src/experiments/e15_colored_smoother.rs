//! E15 — making the HPCG smoother parallel: multi-color Gauss–Seidel vs
//! the sequential natural-order sweep (HPCG's sanctioned optimization).

use crate::table::{f2, sci, secs, Table};
use crate::{best_of, Scale};
use xsc_core::blas1;
use xsc_sparse::coloring::{color_classes, colored_symgs, greedy_coloring};
use xsc_sparse::stencil::{build_matrix, build_rhs, Geometry};
use xsc_sparse::symgs::symgs;
use xsc_sparse::{CsrMatrix, FormatMatrix, SparseFormat, SparseOps};

fn residual(a: &CsrMatrix<f64>, x: &[f64], b: &[f64]) -> f64 {
    let mut r = vec![0.0; b.len()];
    a.residual(x, b, &mut r);
    blas1::nrm2(&r) / blas1::nrm2(b).max(f64::MIN_POSITIVE)
}

/// Runs the experiment and prints its table.
pub fn run(scale: Scale) {
    let g = scale.pick(24, 48);
    let geom = Geometry::new(g, g, g);
    let a = build_matrix(geom);
    let (b, _) = build_rhs(&a);
    let reps = scale.pick(2, 3);

    let colors = greedy_coloring(&a);
    let num_colors = colors.iter().max().unwrap() + 1;
    let classes = color_classes(&colors);

    let mut x_nat = vec![0.0; a.nrows()];
    let t_nat = best_of(reps, || {
        x_nat.iter_mut().for_each(|v| *v = 0.0);
        for _ in 0..5 {
            symgs(&a, &b, &mut x_nat);
        }
    });
    let mut x_col = vec![0.0; a.nrows()];
    let t_col = best_of(reps, || {
        x_col.iter_mut().for_each(|v| *v = 0.0);
        for _ in 0..5 {
            colored_symgs(&a, &classes, &b, &mut x_col);
        }
    });

    let mut t = Table::new(&[
        "smoother",
        "time (5 sweeps)",
        "residual after 5 sweeps",
        "parallel rows per step",
    ]);
    t.row(vec![
        "natural order (sequential)".into(),
        secs(t_nat),
        sci(residual(&a, &x_nat, &b)),
        "1".into(),
    ]);
    t.row(vec![
        format!("{num_colors}-color (parallel)"),
        secs(t_col),
        sci(residual(&a, &x_col, &b)),
        f2(a.nrows() as f64 / num_colors as f64),
    ]);
    // The same colored sweep on the compact formats: identical update order,
    // so the iterates must match the usize-CSR sweep bit for bit.
    for fmt in [SparseFormat::Csr32, SparseFormat::SellCSigma] {
        let m = FormatMatrix::convert(a.clone(), fmt).expect("stencil fits u32 indices");
        let mut x_fmt = vec![0.0; a.nrows()];
        let t_fmt = best_of(reps, || {
            x_fmt.iter_mut().for_each(|v| *v = 0.0);
            for _ in 0..5 {
                m.colored_symgs(&classes, &b, &mut x_fmt);
            }
        });
        assert_eq!(
            x_fmt, x_col,
            "{fmt}: colored SymGS must be bit-identical to the usize-CSR sweep"
        );
        t.row(vec![
            format!("{num_colors}-color ({fmt})"),
            secs(t_fmt),
            sci(residual(&a, &x_fmt, &b)),
            f2(a.nrows() as f64 / num_colors as f64),
        ]);
    }
    t.print(&format!("E15: Gauss–Seidel smoother on the {g}^3 stencil"));

    // Full pipeline ablation: the three smoother families inside MG-CG.
    use xsc_sparse::mg::{MgPreconditioner, Smoother};
    use xsc_sparse::pcg;
    let g2 = scale.pick(16usize, 32);
    let geom2 = Geometry::new(g2, g2, g2);
    let a2 = build_matrix(geom2);
    let (b2, _) = build_rhs(&a2);
    let mut t2 = Table::new(&[
        "MG smoother",
        "CG iterations",
        "time",
        "final residual",
        "sequential?",
    ]);
    for (name, sm, seq) in [
        ("SymGS (natural)", Smoother::SymGs, "yes"),
        ("SymGS (8-color)", Smoother::Colored, "no"),
        ("Chebyshev deg-4", Smoother::Chebyshev { degree: 4 }, "no"),
    ] {
        let mg = MgPreconditioner::with_smoother(geom2, 3, sm);
        let mut x = vec![0.0; a2.nrows()];
        let mut res = None;
        let tm = best_of(reps, || {
            x.iter_mut().for_each(|v| *v = 0.0);
            res = Some(pcg(&a2, &b2, &mut x, 100, 1e-9, &mg));
        });
        let res = res.unwrap();
        t2.row(vec![
            name.into(),
            res.iterations.to_string(),
            secs(tm),
            sci(res.final_residual()),
            seq.into(),
        ]);
    }
    t2.print(&format!("E15b: smoother families inside MG-CG ({g2}^3)"));
    println!("  keynote claim: reordering trades a little convergence per sweep for");
    println!("  a smoother that scales — rows within a color update concurrently.");
    println!("  (On a 1-core host the colored sweep shows overhead, not speedup; the");
    println!("  'parallel rows per step' column is the concurrency a wide machine exploits.)");
}
