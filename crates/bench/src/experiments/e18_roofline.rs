//! E18 — the measured roofline: per-kernel flop/byte counters placed on
//! this host's measured envelope.
//!
//! Every other experiment *models* data movement; this one reads the
//! counters the instrumented kernels declare as they run (see
//! `xsc-metrics`) and places each kernel on a roofline whose two peaks are
//! measured on the spot: peak Gflop/s from the parallel blocked dgemm,
//! peak GB/s from a large streaming axpy. The plot makes the keynote's
//! headline visual: dense kernels cluster under the flat compute ceiling,
//! the HPCG-side kernels pin to the sloped bandwidth roof.

use crate::json::{write_report, Json};
use crate::table::{f2, pct, sci, Table};
use crate::Scale;
use xsc_core::gemm::{gemm, gemm_with_opts, GemmParams, Transpose};
use xsc_core::{blas1, flops, gen, microkernel, Matrix, MicroKernel};
use xsc_dense::hpl;
use xsc_metrics::{roofline, MachineEnvelope, RooflinePoint, Stopwatch};
use xsc_sparse::stencil::{build_matrix, build_rhs};
use xsc_sparse::{mg::MgPreconditioner, symgs, Geometry, Preconditioner};

/// Measures sustainable memory bandwidth (GB/s) from the instrumented
/// axpy's own counters: bytes declared by the traffic model over measured
/// wall time, best of several sweeps over a far-larger-than-cache stream.
fn measured_stream_gbs(scale: Scale) -> f64 {
    let n = scale.pick(1 << 22, 1 << 24); // 32 MiB / 128 MiB per vector
    let x = vec![1.0f64; n];
    let mut y = vec![0.0f64; n];
    let ((), delta) = xsc_metrics::measure(|| {
        for _ in 0..8 {
            blas1::axpy(1.0e-9, &x, &mut y);
        }
    });
    delta
        .iter()
        .find(|(k, _)| *k == "axpy")
        .map(|(_, c)| c.attained_gbs())
        .unwrap_or(0.0)
}

/// Runs the experiment and prints the roofline plot and table.
pub fn run(scale: Scale) {
    run_opts(scale, false);
}

/// One measured micro-kernel arm of the E18 GEMM showdown.
struct VariantArm {
    kernel: MicroKernel,
    seconds: f64,
    gflops: f64,
    /// Order-sensitive FNV-style hash of every bit of the output matrix —
    /// equal across variants iff the results are bit-identical.
    checksum: u64,
}

/// FNV-1a-style fold over the raw bits of `xs`, in storage order.
fn bitwise_checksum(xs: &[f64]) -> u64 {
    xs.iter().fold(0xcbf29ce484222325u64, |h, x| {
        h.wrapping_mul(0x100000001b3).wrapping_add(x.to_bits())
    })
}

/// Times every available micro-kernel variant on the same `s x s x s`
/// problem at blocking `params` (best of `reps`), checksumming each output.
/// Panics if any variant's output differs bitwise from the scalar arm's —
/// the bit-identity contract is what lets the roofline compare them as
/// implementations of the *same* kernel.
fn measure_variant_arms(
    s: usize,
    reps: usize,
    params: GemmParams,
    a: &Matrix<f64>,
    b: &Matrix<f64>,
) -> Vec<VariantArm> {
    let gemm_flops = flops::gemm(s, s, s);
    let arms: Vec<VariantArm> = MicroKernel::available()
        .into_iter()
        .map(|mk| {
            let mut c = Matrix::<f64>::zeros(s, s);
            let mut seconds = f64::INFINITY;
            for _ in 0..reps.max(1) {
                let t = Stopwatch::start();
                gemm_with_opts(
                    Transpose::No,
                    Transpose::No,
                    1.0,
                    a,
                    b,
                    0.0,
                    &mut c,
                    params,
                    mk,
                );
                seconds = seconds.min(t.seconds());
            }
            VariantArm {
                kernel: mk,
                seconds,
                gflops: flops::gflops(gemm_flops, seconds),
                checksum: bitwise_checksum(c.as_slice()),
            }
        })
        .collect();
    for arm in &arms {
        assert_eq!(
            arm.checksum, arms[0].checksum,
            "micro-kernel {} broke bit-identity with {}",
            arm.kernel, arms[0].kernel
        );
    }
    arms
}

/// Runs the experiment; with `json` set, also writes `BENCH_roofline.json`.
pub fn run_opts(scale: Scale, json: bool) {
    // Envelope measured on the spot, before the registry is cleared.
    let peak = hpl::measure_peak_gflops(scale.pick(256, 512), 3);
    let bw = measured_stream_gbs(scale);
    let env = MachineEnvelope::new("this host (measured)", peak, bw);
    println!(
        "\n[E18] measured envelope: {peak:.2} Gflop/s, {bw:.2} GB/s -> balance {:.2} flops/byte",
        env.balance()
    );

    // Run one representative instance of each instrumented kernel with a
    // cleared registry, so the snapshot below covers exactly this work.
    xsc_metrics::reset();

    // Dense side: a square gemm and a full HPL-like solve ("hpl_lu", whose
    // fused panel/update loops make it a leaf entry of its own).
    let s = scale.pick(320, 768);
    let a = gen::random_matrix::<f64>(s, s, 1);
    let b = gen::random_matrix::<f64>(s, s, 2);
    let mut c = Matrix::<f64>::zeros(s, s);
    gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, &mut c);
    hpl::run_hpl(scale.pick(512, 1024), 128, 42).expect("HPL run failed");

    // Sparse side: SpMV, SymGS, and an MG V-cycle on the HPCG operator.
    // The V-cycle's nested smoother/residual work also accrues to "symgs"
    // and "spmv" — entries overlap by design (see xsc-metrics docs).
    let g = scale.pick(48, 80);
    let geo = Geometry::new(g, g, g);
    let a_csr = build_matrix(geo);
    let (_, rhs) = build_rhs(&a_csr);
    let mut y = vec![0.0; a_csr.nrows()];
    for _ in 0..scale.pick(10, 25) {
        a_csr.spmv(&rhs, &mut y);
    }
    let mut xg = vec![0.0; a_csr.nrows()];
    symgs::symgs(&a_csr, &rhs, &mut xg);
    let mgp = MgPreconditioner::new(geo, 3);
    let mut z = vec![0.0; a_csr.nrows()];
    mgp.apply(&rhs, &mut z);

    let snap = xsc_metrics::snapshot();
    let points = roofline::analyze_all(&snap, &env);
    print!("\n{}", xsc_metrics::ascii_roofline(&points, &env));

    let mut t = Table::new(&[
        "kernel",
        "flops",
        "bytes",
        "flops/byte",
        "Gflop/s",
        "GB/s",
        "% of roof",
        "bound",
    ]);
    for p in &points {
        t.row(vec![
            p.kernel.clone(),
            sci(p.flops as f64),
            sci(p.bytes as f64),
            f2(p.intensity),
            f2(p.attained_gflops),
            f2(p.attained_gbs),
            pct(p.roof_fraction),
            p.verdict.to_string(),
        ]);
    }
    t.print("E18: measured per-kernel roofline attribution");

    let by = |k: &str| points.iter().find(|p| p.kernel == k);
    if let (Some(ge), Some(sp)) = (by("gemm"), by("spmv")) {
        println!(
            "  measured intensity: gemm {:.2} vs spmv {:.2} flops/byte -> {:.1}x",
            ge.intensity,
            sp.intensity,
            ge.intensity / sp.intensity
        );
    }
    println!("  keynote claim: the sloped bandwidth roof, not the flop ceiling, bounds the");
    println!("  HPCG-side kernels; extra flops cannot move a kernel pinned to the slope.");
    println!("  (>100% of roof means the analytic traffic model charges DRAM for bytes a");
    println!("  partially cache-resident working set re-served from cache.)");

    // Micro-kernel showdown: the same sequential blocked dgemm, same
    // blocking, every variant this binary + CPU can run — one roofline
    // point per variant, bit-identity asserted between arms.
    let params = xsc_core::gemm::global_params();
    let selected = microkernel::global_microkernel();
    let arms = measure_variant_arms(s, 3, params, &a, &b);
    let mut t = Table::new(&["microkernel", "time", "Gflop/s", "% of peak", "checksum"]);
    for arm in &arms {
        t.row(vec![
            format!(
                "{}{}",
                arm.kernel,
                if arm.kernel == selected {
                    " (selected)"
                } else {
                    ""
                }
            ),
            crate::table::secs(arm.seconds),
            f2(arm.gflops),
            pct(arm.gflops / env.peak_gflops),
            format!("{:016x}", arm.checksum),
        ]);
    }
    t.print(&format!(
        "E18b: GEMM micro-kernel arms, dgemm {s}^3 @ mc={} kc={} nc={} (bit-identical outputs)",
        params.mc, params.kc, params.nc
    ));
    let scalar = arms.iter().find(|v| v.kernel == MicroKernel::Scalar);
    let best_simd = arms
        .iter()
        .filter(|v| v.kernel != MicroKernel::Scalar)
        .max_by(|x, y| x.gflops.total_cmp(&y.gflops));
    match (scalar, best_simd) {
        (Some(sc), Some(simd)) => println!(
            "  {} reaches {:.2} Gflop/s vs scalar {:.2} -> {:.2}x from vectorizing the\n  micro-tile rows; identical bits either way (checksum {:016x}).",
            simd.kernel,
            simd.gflops,
            sc.gflops,
            simd.gflops / sc.gflops,
            sc.checksum
        ),
        _ => println!(
            "  no SIMD micro-kernel in this build (enable the `simd` feature on x86_64);\n  scalar arm checksum {:016x}.",
            arms[0].checksum
        ),
    }

    if json {
        let report = Json::obj(vec![
            ("experiment", Json::s("e18_roofline")),
            (
                "machine",
                Json::obj(vec![
                    ("name", Json::s(env.name.clone())),
                    ("peak_gflops", Json::Num(env.peak_gflops)),
                    ("peak_gbs", Json::Num(env.peak_gbs)),
                    ("balance_flops_per_byte", Json::Num(env.balance())),
                ]),
            ),
            (
                "kernels",
                Json::Arr(
                    points
                        .iter()
                        .map(|p| point_to_json(p, selected, params))
                        .collect(),
                ),
            ),
            (
                "gemm_variants",
                Json::Arr(
                    arms.iter()
                        .map(|arm| {
                            Json::obj(vec![
                                ("microkernel", Json::s(arm.kernel.name())),
                                ("selected", Json::Bool(arm.kernel == selected)),
                                ("mc", Json::Int(params.mc as i64)),
                                ("kc", Json::Int(params.kc as i64)),
                                ("nc", Json::Int(params.nc as i64)),
                                ("seconds", Json::Num(arm.seconds)),
                                ("gflops", Json::Num(arm.gflops)),
                                ("checksum", Json::s(format!("{:016x}", arm.checksum))),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        write_report("BENCH_roofline.json", &report);
    }
}

fn point_to_json(p: &RooflinePoint, selected: MicroKernel, params: GemmParams) -> Json {
    // Only the blocked-GEMM kernel row is executed by a micro-kernel; the
    // other kernels get explicit nulls so the schema is uniform.
    let uses_microkernel = p.kernel == "gemm";
    Json::obj(vec![
        ("kernel", Json::s(p.kernel.clone())),
        ("flops", Json::Int(p.flops as i64)),
        ("bytes", Json::Int(p.bytes as i64)),
        (
            "intensity",
            if p.intensity.is_finite() {
                Json::Num(p.intensity)
            } else {
                Json::Null
            },
        ),
        ("attained_gflops", Json::Num(p.attained_gflops)),
        ("attained_gbs", Json::Num(p.attained_gbs)),
        ("roof_gflops", Json::Num(p.roof_gflops)),
        ("roof_fraction", Json::Num(p.roof_fraction)),
        ("bound", Json::s(p.verdict.to_string())),
        (
            "microkernel",
            if uses_microkernel {
                Json::s(selected.name())
            } else {
                Json::Null
            },
        ),
        (
            "blocking",
            if uses_microkernel {
                Json::obj(vec![
                    ("mc", Json::Int(params.mc as i64)),
                    ("kc", Json::Int(params.kc as i64)),
                    ("nc", Json::Int(params.nc as i64)),
                ])
            } else {
                Json::Null
            },
        ),
    ])
}
