//! E04 — communication-avoiding TSQR vs flat Householder QR on tall-skinny
//! matrices, with the tree-fan-in ablation (leaf block size) and the
//! machine-model projection to 1024 nodes.

use crate::table::{secs, Table};
use crate::{best_of, Scale};
use xsc_core::gen;
use xsc_dense::tsqr::{flat_qr_r, tsqr};
use xsc_machine::{KernelProfile, MachineModel};

/// Runs the experiment and prints its table.
pub fn run(scale: Scale) {
    let ms: Vec<usize> = scale.pick(vec![50_000, 100_000], vec![200_000, 1_000_000]);
    let n = 32;
    let reps = scale.pick(2, 3);
    let mut t = Table::new(&[
        "m",
        "n",
        "method",
        "time",
        "speedup",
        "comm words",
        "tree levels",
    ]);
    for m in ms {
        let a = gen::random_matrix::<f64>(m, n, 3);
        let mut flat_words = 0;
        let t_flat = best_of(reps, || flat_words = flat_qr_r(&a).1);
        let mut res = None;
        let t_tsqr = best_of(reps, || res = Some(tsqr(&a, (m / 16).max(n))));
        let res = res.unwrap();
        t.row(vec![
            m.to_string(),
            n.to_string(),
            "flat Householder".into(),
            secs(t_flat),
            "1.00".into(),
            flat_words.to_string(),
            "-".into(),
        ]);
        t.row(vec![
            m.to_string(),
            n.to_string(),
            "TSQR (16 leaves)".into(),
            secs(t_tsqr),
            format!("{:.2}", t_flat / t_tsqr),
            res.comm_words.to_string(),
            res.levels.to_string(),
        ]);
        // Ablation: more leaves = more parallelism, more (but still tiny)
        // tree communication.
        let res64 = tsqr(&a, (m / 64).max(n));
        t.row(vec![
            m.to_string(),
            n.to_string(),
            "TSQR (64 leaves)".into(),
            "-".into(),
            "-".into(),
            res64.comm_words.to_string(),
            res64.levels.to_string(),
        ]);
    }
    t.print("E04: tall-skinny QR — communication-avoiding vs flat");

    // Model projection: what the same algorithms cost across 1024 nodes.
    let machine = MachineModel::node_2016();
    let mt = Table::new(&["method", "modeled time @1024 nodes", "modeled net bytes"]);
    let mut mt = mt;
    for (name, prof) in [
        ("flat QR", KernelProfile::flat_qr(1_000_000, n, 1024)),
        ("TSQR", KernelProfile::tsqr(1_000_000, n, 1024)),
    ] {
        let p = machine.predict(&prof);
        mt.row(vec![
            name.into(),
            secs(p.seconds),
            format!("{:.2e}", prof.net_bytes),
        ]);
    }
    mt.print("E04b: machine-model projection (m=1e6, n=32, p=1024)");
    println!("  keynote claim: O(log P) messages instead of O(n log P); words shrink by ~m/n^2.");
}
