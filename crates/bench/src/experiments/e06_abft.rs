//! E06 — ABFT overhead and recovery: checksum-protected GEMM/Cholesky,
//! with the verification-frequency ablation (per-gemm vs per-factorization).

use crate::table::{pct, sci, secs, Table};
use crate::{best_of, Scale};
use xsc_core::gemm::{gemm, Transpose};
use xsc_core::{factor, gen, norms, Matrix};
use xsc_ft::abft::{abft_gemm, verified_cholesky};
use xsc_ft::inject::{FaultInjector, FaultKind};
use xsc_ft::AbftOutcome;

/// Runs the experiment and prints its table.
pub fn run(scale: Scale) {
    let sizes: Vec<usize> = scale.pick(vec![256, 512], vec![512, 1024, 1536]);
    let reps = scale.pick(2, 3);
    let mut t = Table::new(&[
        "n",
        "plain gemm",
        "ABFT gemm",
        "overhead",
        "fault outcome",
        "resid after repair",
    ]);
    for n in sizes {
        let a = gen::random_matrix::<f64>(n, n, 1);
        let b = gen::random_matrix::<f64>(n, n, 2);
        let mut c = Matrix::<f64>::zeros(n, n);
        let t_plain = best_of(reps, || {
            gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, &mut c);
        });
        let t_abft = best_of(reps, || {
            let _ = abft_gemm(&a, &b, |_| {});
        });
        // Injected single fault, then verify the repaired product.
        let mut inj = FaultInjector::new(1.0, FaultKind::BitFlip, 9);
        let (repaired, outcome) = abft_gemm(&a, &b, |ce| {
            let i = n / 3;
            let j = n / 2;
            let v = ce.get(i, j);
            ce.set(i, j, inj.corrupt_value(v));
        });
        let mut c_ref = Matrix::<f64>::zeros(n, n);
        gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, &mut c_ref);
        let resid = repaired.max_abs_diff(&c_ref) / norms::max_abs(&c_ref);
        let outcome_str = match outcome {
            AbftOutcome::Corrected { row, col, .. } => format!("corrected ({row},{col})"),
            AbftOutcome::Clean => "clean".into(),
            AbftOutcome::Uncorrectable => "UNCORRECTABLE".into(),
        };
        t.row(vec![
            n.to_string(),
            secs(t_plain),
            secs(t_abft),
            pct(t_abft / t_plain - 1.0),
            outcome_str,
            sci(resid),
        ]);
    }
    t.print("E06: ABFT-protected GEMM — overhead and single-fault repair");

    // Cholesky: end-of-factorization verification (the cheap frequency in
    // the ablation; per-gemm verification is the abft_gemm path above).
    let n = scale.pick(384, 768);
    let a0 = gen::random_spd::<f64>(n, 3);
    let t_plain = best_of(reps, || {
        let mut f = a0.clone();
        factor::potrf_blocked(&mut f, 64).unwrap();
    });
    let t_ver = best_of(reps, || {
        let mut f = a0.clone();
        verified_cholesky(&mut f, 64, |_| {}).unwrap();
    });
    let mut f = a0.clone();
    let clean = verified_cholesky(&mut f, 64, |l| {
        let v = l.get(n / 2, n / 4);
        l.set(n / 2, n / 4, v + 1.0);
    })
    .unwrap();
    let mut t2 = Table::new(&[
        "n",
        "plain potrf",
        "verified potrf",
        "overhead",
        "tampered run detected",
    ]);
    t2.row(vec![
        n.to_string(),
        secs(t_plain),
        secs(t_ver),
        pct(t_ver / t_plain - 1.0),
        (!clean).to_string(),
    ]);
    t2.print("E06b: checksum-verified Cholesky (verify once per factorization)");
    println!("  keynote claim: ABFT protects O(n^3) kernels at O(n^2) cost — a few percent.");
}
