//! E21 — solve-as-a-service under open-loop load: coalesced vs
//! uncoalesced launch paths through the `xsc-serve` front-end.
//!
//! The keynote's batched-BLAS theme (E07) restated as a traffic problem:
//! a service facing "millions of users" receives mostly *tiny* solves
//! whose launch overhead dwarfs their arithmetic. The experiment drives
//! the full serving stack — validated requests, the multi-tenant
//! admission/priority queue, the coalescer, and the analytic service
//! model — with a seeded open-loop load generator, twice:
//!
//! * **uncoalesced** — every job pays its own launch;
//! * **coalesced** — tiny solves waiting in the queue share one
//!   `xsc-batched` launch (up to 64 wide).
//!
//! Reported per arm: p50/p99/max end-to-end latency and throughput —
//! all in **virtual nanoseconds** from the deterministic replay
//! ([`xsc_serve::replay`]), so the whole report is byte-identical across
//! runs at the same seed (asserted by a test below and by CI running the
//! binary twice and `cmp`-ing the JSON). The jobs are really executed:
//! both arms must produce bit-identical checksums, and a third pass
//! through the real `xsc-runtime` executor ([`Server::run_pending`])
//! must reproduce them again.

use crate::json::{write_report, Json};
use crate::table::f2;
use crate::Scale;
use xsc_serve::{
    generate, replay, CoalescePolicy, LoadProfile, QueueConfig, Server, ServerConfig, ServiceModel,
};

/// Campaign seed: the whole timeline (arrivals, tenants, job mix, job
/// seeds) derives from it.
pub const SERVE_SEED: u64 = 0xE21;

/// Acceptance floor on the coalescing throughput win.
pub const MIN_COALESCE_SPEEDUP: f64 = 1.5;

fn profile(scale: Scale) -> LoadProfile {
    LoadProfile::many_tiny(SERVE_SEED, scale.pick(400, 1600), scale.pick(2_000, 1_500))
}

/// Queue sized so nothing bounces: both arms then complete the same job
/// set, which is what makes cross-arm bit-identity checkable.
fn queue_cfg(requests: usize) -> QueueConfig {
    QueueConfig {
        capacity: requests,
        per_tenant_quota: requests,
    }
}

fn arm_json(name: &str, rep: &xsc_serve::ArmReport) -> Json {
    Json::obj(vec![
        ("arm", Json::s(name)),
        ("completed", Json::Int(rep.completed as i64)),
        ("rejected", Json::Int(rep.rejected as i64)),
        ("launches", Json::Int(rep.launches as i64)),
        ("mean_launch_width", Json::Num(rep.mean_launch_width)),
        ("p50_latency_ns", Json::Int(rep.latency.p50_ns as i64)),
        ("p99_latency_ns", Json::Int(rep.latency.p99_ns as i64)),
        ("max_latency_ns", Json::Int(rep.latency.max_ns as i64)),
        ("mean_latency_ns", Json::Num(rep.latency.mean_ns)),
        ("makespan_ns", Json::Int(rep.makespan_ns as i64)),
        ("throughput_rps", Json::Num(rep.throughput_rps)),
    ])
}

fn us(ns: u64) -> String {
    f2(ns as f64 / 1_000.0)
}

/// Runs both arms plus the real-executor cross-check and builds the
/// deterministic summary: rendered tables and the machine-readable
/// report. Same seed in, same bytes out.
pub fn service_summary(scale: Scale) -> (String, Json) {
    let prof = profile(scale);
    let arrivals = generate(&prof);
    let cfg = queue_cfg(prof.requests);
    let model = ServiceModel::default();
    let uncoalesced_policy = CoalescePolicy {
        enabled: false,
        max_batch: 64,
    };
    let coalesced_policy = CoalescePolicy::default();

    let unc = replay(&arrivals, cfg, &uncoalesced_policy, &model);
    let coa = replay(&arrivals, cfg, &coalesced_policy, &model);

    // --- acceptance: same job set, same answers, measurable win --------
    assert_eq!(unc.rejected, 0, "uncoalesced arm must not bounce jobs");
    assert_eq!(coa.rejected, 0, "coalesced arm must not bounce jobs");
    assert_eq!(unc.completed, prof.requests);
    assert_eq!(coa.completed, prof.requests);
    for (c, u) in coa.outcomes.iter().zip(&unc.outcomes) {
        assert_eq!(c.id, u.id);
        assert_eq!(
            c.checksum.to_bits(),
            u.checksum.to_bits(),
            "job {} differs between arms",
            c.id
        );
    }
    let speedup = coa.throughput_rps / unc.throughput_rps;
    assert!(
        speedup >= MIN_COALESCE_SPEEDUP,
        "coalescing speedup {speedup:.2}x below {MIN_COALESCE_SPEEDUP}x"
    );
    assert!(
        coa.latency.p99_ns < unc.latency.p99_ns,
        "coalescing must improve tail latency"
    );

    // --- cross-check on the real executor -------------------------------
    // Same requests through Server::run_pending (xsc-runtime executor,
    // explicit tenant-priority scheduling): the answers must reproduce
    // bit-for-bit. Launch widths may differ — the server drains the whole
    // backlog at once — which is exactly the transparency being asserted.
    let mut server = Server::new(ServerConfig {
        threads: 4,
        queue: cfg,
        coalesce: coalesced_policy,
    });
    for a in &arrivals {
        server
            .submit(a.request.clone())
            .expect("queue sized for the full timeline");
    }
    let executed = server.run_pending();
    assert_eq!(executed.len(), coa.outcomes.len());
    for (e, c) in executed.iter().zip(&coa.outcomes) {
        assert_eq!(e.id, c.id);
        assert_eq!(
            e.checksum.to_bits(),
            c.checksum.to_bits(),
            "executor answer for job {} differs from replay",
            e.id
        );
    }

    // --- render ----------------------------------------------------------
    let mut t = crate::table::Table::new(&[
        "arm",
        "jobs",
        "launches",
        "width",
        "p50 us",
        "p99 us",
        "max us",
        "makespan ms",
        "throughput rps",
    ]);
    for (name, rep) in [("uncoalesced", &unc), ("coalesced", &coa)] {
        t.row(vec![
            name.into(),
            rep.completed.to_string(),
            rep.launches.to_string(),
            f2(rep.mean_launch_width),
            us(rep.latency.p50_ns),
            us(rep.latency.p99_ns),
            us(rep.latency.max_ns),
            f2(rep.makespan_ns as f64 / 1e6),
            format!("{:.0}", rep.throughput_rps),
        ]);
    }
    let mut table = t.render(&format!(
        "E21: solve-as-a-service — open-loop load, {} requests, 90% tiny solves \
         (seed {SERVE_SEED:#x}, virtual time, deterministic)",
        prof.requests
    ));

    let mut tt = crate::table::Table::new(&["tenant", "class", "completed"]);
    for (name, prio) in &prof.tenants {
        tt.row(vec![
            name.clone(),
            prio.name().into(),
            coa.per_tenant_completed
                .get(name)
                .copied()
                .unwrap_or(0)
                .to_string(),
        ]);
    }
    table.push_str(&tt.render("E21: per-tenant completions (coalesced arm)"));

    let tenants_json: Vec<Json> = prof
        .tenants
        .iter()
        .map(|(name, prio)| {
            Json::obj(vec![
                ("tenant", Json::s(name.clone())),
                ("priority", Json::s(prio.name())),
                (
                    "completed",
                    Json::Int(coa.per_tenant_completed.get(name).copied().unwrap_or(0) as i64),
                ),
            ])
        })
        .collect();

    let report = Json::obj(vec![
        ("experiment", Json::s("e21_serve")),
        ("seed", Json::Int(SERVE_SEED as i64)),
        ("requests", Json::Int(prof.requests as i64)),
        (
            "mean_interarrival_ns",
            Json::Int(prof.mean_interarrival_ns as i64),
        ),
        (
            "model",
            Json::obj(vec![
                ("workers", Json::Int(model.workers as i64)),
                (
                    "launch_overhead_ns",
                    Json::Int(model.launch_overhead_ns as i64),
                ),
                ("flops_per_ns", Json::Int(model.flops_per_ns as i64)),
                ("bytes_per_ns", Json::Int(model.bytes_per_ns as i64)),
            ]),
        ),
        ("min_coalescing_speedup", Json::Num(MIN_COALESCE_SPEEDUP)),
        (
            "arms",
            Json::Arr(vec![
                arm_json("uncoalesced", &unc),
                arm_json("coalesced", &coa),
            ]),
        ),
        ("coalescing_speedup", Json::Num(speedup)),
        (
            "p99_latency_improvement",
            Json::Num(unc.latency.p99_ns as f64 / coa.latency.p99_ns as f64),
        ),
        ("bit_identical_across_arms", Json::Bool(true)),
        ("executor_checksums_match", Json::Bool(true)),
        ("per_tenant", Json::Arr(tenants_json)),
    ]);
    (table, report)
}

/// Runs the experiment and prints its tables.
pub fn run(scale: Scale) {
    run_opts(scale, false);
}

/// Runs the experiment; with `json` set, also writes `BENCH_e21.json`.
pub fn run_opts(scale: Scale, json: bool) {
    let (table, report) = service_summary(scale);
    print!("{table}");
    println!("  keynote claim: batched interfaces exist because the small-problem flood is");
    println!("  real — served naively, every tiny solve pays a full launch and the service");
    println!("  drowns in overhead. Coalescing the admission queue into batched launches");
    println!("  buys back the throughput and the tail latency without changing a single");
    println!("  bit of any answer (both arms and the real executor agree bit-for-bit).");
    if json {
        write_report("BENCH_e21.json", &report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_summary_is_byte_identical_across_runs() {
        // The PR's reproducibility gate: same seed, same bytes — table
        // and JSON both, twice, in one process.
        let (t1, j1) = service_summary(Scale::Quick);
        let (t2, j2) = service_summary(Scale::Quick);
        assert_eq!(t1, t2, "summary table must be deterministic");
        assert_eq!(
            j1.render(),
            j2.render(),
            "JSON report must be deterministic"
        );
        assert!(t1.contains("uncoalesced") && t1.contains("coalesced"));
    }

    #[test]
    fn priorities_exist_in_profile() {
        use xsc_serve::Priority;
        let prof = profile(Scale::Quick);
        let classes: Vec<Priority> = prof.tenants.iter().map(|(_, p)| *p).collect();
        assert!(classes.contains(&Priority::Interactive));
        assert!(classes.contains(&Priority::Batch));
    }
}
