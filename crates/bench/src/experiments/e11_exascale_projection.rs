//! E11 — projecting the HPL/HPCG gap across machine generations with the
//! analytic model, and replaying a real tiled-Cholesky DAG on simulated
//! machines far wider than the host.

use crate::measured::{kernel, leaf_sum};
use crate::table::{f2, pct, sci, Table};
use crate::Scale;
use xsc_core::TileMatrix;
use xsc_dense::cholesky;
use xsc_dense::poison::Poison;
use xsc_machine::des::strong_scaling_sweep;
use xsc_machine::{KernelProfile, MachineModel};

/// Runs the experiment and prints its tables.
pub fn run(scale: Scale) {
    // Part 1: modeled %-of-peak per generation.
    let n_hpl = 50_000;
    let g = 104usize;
    let n_hpcg = g.pow(3);
    let mut t = Table::new(&[
        "machine",
        "peak Tflop/s",
        "HPL % of peak",
        "HPCG % of peak",
        "gap (x)",
        "HPCG energy (J)",
    ]);
    for m in MachineModel::generations() {
        let hpl = m.predict(&KernelProfile::hpl(n_hpl, 256));
        let hpcg = m.predict(&KernelProfile::hpcg(n_hpcg, 27 * n_hpcg, 50));
        t.row(vec![
            m.name.into(),
            f2(m.peak_flops() / 1e12),
            pct(hpl.fraction_of_peak),
            pct(hpcg.fraction_of_peak),
            f2(hpl.fraction_of_peak / hpcg.fraction_of_peak),
            sci(hpcg.energy_joules),
        ]);
    }
    t.print("E11: modeled HPL/HPCG fraction of peak across generations");
    let measured = xsc_dense::hpl::measure_peak_gflops(scale.pick(192, 384), 2);
    println!(
        "  real-machine anchor: this host's blocked parallel dgemm peaks at {measured:.2} Gflop/s; the modeled fractions above scale from anchors like it"
    );

    // Measured-intensity anchors: run small instrumented instances of both
    // benchmarks and read their flop/byte ratios from xsc-metrics. The
    // projection table above prices kernels by modeled intensity; these
    // lines pin that model to counters from real runs on this host.
    let (_, d_lu) = xsc_metrics::measure(|| {
        xsc_dense::hpl::run_hpl(scale.pick(384, 768), 128, 42).expect("HPL anchor run failed")
    });
    let lu = kernel(&d_lu, "hpl_lu");
    let ga = scale.pick(32, 64);
    let (_, d_cg) = xsc_metrics::measure(|| {
        xsc_sparse::run_hpcg(xsc_sparse::Geometry::new(ga, ga, ga), 3, scale.pick(10, 50))
    });
    let cg = leaf_sum(&d_cg);
    let m16 = MachineModel::node_2016();
    println!(
        "  measured-intensity anchors: hpl_lu {:.1} f/B, HPCG-like {:.2} f/B on this host;",
        lu.intensity(),
        cg.intensity()
    );
    println!(
        "  against the 2016 node's balance of {:.1} f/B the dense solve {} the knee (larger n and nb push it up); the sparse solve sits ~{:.0}x below it.",
        m16.balance(),
        if lu.intensity() >= m16.balance() { "clears" } else { "approaches" },
        m16.balance() / cg.intensity().max(1e-9)
    );

    // Part 2: replay a real task DAG on simulated wide machines.
    let nt = scale.pick(16usize, 24);
    let nb = 64usize;
    let a = TileMatrix::<f64>::zeros(nt * nb, nt * nb, nb);
    let mut graph = cholesky::build_graph(&a, &Poison::new());
    let edges = graph.edge_list();
    let costs: Vec<f64> = graph
        .costs()
        .into_iter()
        .map(|c| c as f64 / 40e9) // seconds at 40 Gflop/s per worker
        .collect();
    let n_tasks = costs.len();
    let workers = [1usize, 16, 64, 256, 1024];

    let mut t2 = Table::new(&[
        "workers",
        "makespan (no comm)",
        "speedup",
        "utilization",
        "makespan (comm 5us)",
        "comm slowdown",
    ]);
    let free = strong_scaling_sweep(n_tasks, &edges, &costs, &workers, 0.0);
    let comm = strong_scaling_sweep(n_tasks, &edges, &costs, &workers, 5e-6);
    for ((w, rf), (_, rc)) in free.iter().zip(comm.iter()) {
        t2.row(vec![
            w.to_string(),
            sci(rf.makespan),
            f2(rf.speedup),
            pct(rf.utilization),
            sci(rc.makespan),
            f2(rc.makespan / rf.makespan),
        ]);
    }
    t2.print(&format!(
        "E11b: DES replay of tiled Cholesky DAG ({nt}x{nt} tiles, {n_tasks} tasks) on modeled machines"
    ));
    println!(
        "  DAG critical path: {:.2e}s; total work {:.2e}s -> max useful workers ~{:.0}",
        free[0].1.critical_path,
        free[0].1.total_work,
        free[0].1.total_work / free[0].1.critical_path
    );
    println!("  keynote claim: peak grows ~1000x towards exascale while real-application");
    println!("  fractions of peak fall; parallelism beyond the DAG's width is wasted.");
}
