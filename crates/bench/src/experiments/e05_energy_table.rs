//! E05 — the "rules have changed" energy table: picojoules per operation
//! across machine generations, and where the energy of a real solve goes.

use crate::measured::leaf_sum;
use crate::table::{f2, pct, sci, Table};
use crate::Scale;
use xsc_machine::{KernelProfile, MachineModel};
use xsc_sparse::{run_hpcg, Geometry};

/// Runs the experiment and prints its tables.
pub fn run(scale: Scale) {
    let gens = MachineModel::generations();

    let mut t = Table::new(&["operation (pJ)", gens[0].name, gens[1].name, gens[2].name]);
    type EnergyGetter = fn(&MachineModel) -> f64;
    let rows: Vec<(&str, EnergyGetter)> = vec![
        ("DP flop", |m| m.energy.pj_per_flop),
        ("byte from cache", |m| m.energy.pj_per_byte_cache),
        ("byte from DRAM", |m| m.energy.pj_per_byte_dram),
        ("byte over network", |m| m.energy.pj_per_byte_network),
    ];
    for (name, f) in rows {
        t.row(vec![
            name.into(),
            f2(f(&gens[0])),
            f2(f(&gens[1])),
            f2(f(&gens[2])),
        ]);
    }
    t.print("E05: energy per operation (picojoules) across generations");

    let mut t2 = Table::new(&[
        "machine",
        "kernel",
        "flops/byte needed (balance)",
        "energy in flops",
        "energy in data movement",
    ]);
    for m in &gens {
        for (name, prof) in [
            ("HPL n=50k", KernelProfile::hpl(50_000, 256)),
            (
                "HPCG 104^3 x50",
                KernelProfile::hpcg(104usize.pow(3), 27 * 104usize.pow(3), 50),
            ),
        ] {
            let flop_j = prof.flops * m.energy.pj_per_flop * 1e-12;
            let move_j = prof.dram_bytes * m.energy.pj_per_byte_dram * 1e-12
                + prof.net_bytes * m.energy.pj_per_byte_network * 1e-12;
            let total = flop_j + move_j;
            t2.row(vec![
                m.name.into(),
                name.into(),
                f2(m.balance()),
                pct(flop_j / total),
                pct(move_j / total),
            ]);
        }
    }
    t2.print("E05b: where the joules go");
    println!("  keynote claim: a DP flop costs 10-100x less than moving its operands;");
    println!("  the machine balance (flops needed per byte) worsens every generation.");

    // E05c: the same split priced from *measured* counters — an actual
    // instrumented HPCG-like solve on this host, its flop/byte totals read
    // from xsc-metrics instead of the analytic profile above.
    let g = scale.pick(32, 64);
    let iters = scale.pick(10, 50);
    let (_, delta) = xsc_metrics::measure(|| run_hpcg(Geometry::new(g, g, g), 3, iters));
    let leaf = leaf_sum(&delta);
    let mut t3 = Table::new(&[
        "machine",
        "measured flops",
        "measured GB",
        "energy in flops",
        "energy in data movement",
    ]);
    for m in &gens {
        let flop_j = leaf.flops as f64 * m.energy.pj_per_flop * 1e-12;
        let move_j = leaf.bytes() as f64 * m.energy.pj_per_byte_dram * 1e-12;
        let total = flop_j + move_j;
        t3.row(vec![
            m.name.into(),
            sci(leaf.flops as f64),
            f2(leaf.bytes() as f64 / 1e9),
            pct(flop_j / total),
            pct(move_j / total),
        ]);
    }
    t3.print(&format!(
        "E05c: where the joules go — measured counters ({g}^3 HPCG-like, {iters} iters, intensity {:.2} f/B)",
        leaf.intensity()
    ));
    println!("  measured data movement agrees with the modeled split: the solve's energy");
    println!("  budget is data movement on every generation, and worsens with each.");
}
