//! E14 — communication-avoiding LU: tournament pivoting vs partial
//! pivoting, accuracy and pivot-search synchronization counts.

use crate::table::{sci, secs, Table};
use crate::{best_of, Scale};
use xsc_core::{factor, gen, norms};
use xsc_dense::calu::calu;

/// Runs the experiment and prints its table.
pub fn run(scale: Scale) {
    let sizes: Vec<usize> = scale.pick(vec![256, 512], vec![512, 1024, 2048]);
    let nb = 64;
    let reps = scale.pick(2, 3);
    let mut t = Table::new(&[
        "n",
        "method",
        "time",
        "scaled residual",
        "pivot sync steps/panel",
    ]);
    for n in sizes {
        let a = gen::random_matrix::<f64>(n, n, 17);
        let b = gen::rhs_for_unit_solution(&a);

        let mut x1 = Vec::new();
        let t_gepp = best_of(reps, || {
            let mut f = a.clone();
            let piv = factor::getrf_blocked(&mut f, nb).unwrap();
            x1 = b.clone();
            factor::getrf_solve(&f, &piv, &mut x1);
        });
        t.row(vec![
            n.to_string(),
            "GEPP (partial pivoting)".into(),
            secs(t_gepp),
            sci(norms::hpl_scaled_residual(&a, &x1, &b)),
            // One global max-reduction per column of the panel.
            nb.to_string(),
        ]);

        let mut x2 = Vec::new();
        let t_calu = best_of(reps, || {
            let mut f = a.clone();
            let piv = calu(&mut f, nb, 2 * nb).unwrap();
            x2 = b.clone();
            factor::getrf_solve(&f, &piv, &mut x2);
        });
        // Tournament: log2(#blocks) rounds per panel.
        let blocks = (n / (2 * nb)).max(1);
        let rounds = (blocks as f64).log2().ceil().max(1.0) as usize;
        t.row(vec![
            n.to_string(),
            "CALU (tournament)".into(),
            secs(t_calu),
            sci(norms::hpl_scaled_residual(&a, &x2, &b)),
            rounds.to_string(),
        ]);
    }
    t.print("E14: LU pivoting strategies — accuracy and synchronization");
    println!("  keynote claim: tournament pivoting cuts the panel's pivot synchronizations");
    println!("  from O(nb) column reductions to O(log P) tournament rounds at GEPP-class");
    println!("  accuracy (both residuals pass the HPL acceptance threshold of 16).");
}
