//! E16 — communication lower bounds: how far 2-D matmul sits above the
//! bound, and what 2.5-D replication buys back.

use crate::table::{f2, sci, secs, Table};
use crate::Scale;
use xsc_machine::comm_optimal::{
    matmul_comm_time, matmul_comm_words, matmul_lower_bound_words, max_replication, MatmulAlgorithm,
};
use xsc_machine::MachineModel;

/// Runs the experiment and prints its table.
pub fn run(_scale: Scale) {
    let m = MachineModel::node_2016();
    let n = 50_000usize;
    let mut t = Table::new(&[
        "ranks",
        "algorithm",
        "words/rank",
        "x over lower bound",
        "modeled comm time",
    ]);
    for p in [64usize, 512, 4096, 32_768] {
        let bound = matmul_lower_bound_words(n, p);
        let mem_words = 4 * (n / (p as f64).sqrt() as usize).pow(2).max(1) * 8;
        let cmax = max_replication(n, p, mem_words.max(16 * n * n / p));
        for (name, alg) in [
            ("2D SUMMA".to_string(), MatmulAlgorithm::Summa2d),
            (
                format!("2.5D c={cmax}"),
                MatmulAlgorithm::TwoPointFiveD { c: cmax },
            ),
        ] {
            let words = matmul_comm_words(alg, n, p);
            t.row(vec![
                p.to_string(),
                name,
                sci(words),
                f2(words / bound),
                secs(matmul_comm_time(alg, &m, n, p)),
            ]);
        }
    }
    t.print(&format!(
        "E16: matmul communication vs the lower bound (n={n})"
    ));
    println!("  keynote claim: communication lower bounds are now the design target;");
    println!("  2.5D replication trades memory for a sqrt(c) reduction in words moved,");
    println!("  closing the gap to the Omega(n^2/p^(2/3)) bound that 3D attains.");
}
