//! E10 — strong scaling of a compute-bound kernel (GEMM) vs memory-bound
//! kernels (SpMV) vs an inherently sequential one (SymGS).

use crate::json::{write_report, Json};
use crate::table::{f2, pct, Table};
use crate::{best_of, thread_sweep, with_threads, Scale};
use xsc_core::gemm::{par_gemm, Transpose};
use xsc_core::{flops, gen, Matrix};
use xsc_sparse::stencil::{build_matrix, build_rhs, Geometry};
use xsc_sparse::symgs::symgs;

/// Runs the experiment and prints its table.
pub fn run(scale: Scale) {
    run_opts(scale, false);
}

/// Runs the experiment; with `json` set, also writes `BENCH_e10.json`.
pub fn run_opts(scale: Scale, json: bool) {
    let n_gemm = scale.pick(384, 768);
    let g = scale.pick(32, 64);
    let reps = scale.pick(2, 3);

    let a = gen::random_matrix::<f64>(n_gemm, n_gemm, 1);
    let b = gen::random_matrix::<f64>(n_gemm, n_gemm, 2);
    let mut c = Matrix::<f64>::zeros(n_gemm, n_gemm);
    let gemm_flops = flops::gemm(n_gemm, n_gemm, n_gemm);

    let geom = Geometry::new(g, g, g);
    let sp = build_matrix(geom);
    let (rhs, _) = build_rhs(&sp);
    let x: Vec<f64> = (0..sp.nrows()).map(|i| (i % 13) as f64 * 0.1).collect();
    let mut y = vec![0.0; sp.nrows()];
    let spmv_flops = flops::spmv(sp.nnz());

    let mut base_gemm = 0.0;
    let mut base_spmv = 0.0;
    let mut json_rows = Vec::new();
    let mut t = Table::new(&[
        "threads",
        "GEMM Gflop/s",
        "GEMM efficiency",
        "SpMV Gflop/s",
        "SpMV efficiency",
    ]);
    for threads in thread_sweep() {
        let tg = with_threads(threads, || {
            best_of(reps, || {
                par_gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, &mut c)
            })
        });
        let ts = with_threads(threads, || best_of(reps, || sp.spmv_par(&x, &mut y)));
        let gflops_g = flops::gflops(gemm_flops, tg);
        let gflops_s = flops::gflops(spmv_flops, ts);
        if threads == 1 {
            base_gemm = gflops_g;
            base_spmv = gflops_s;
        }
        t.row(vec![
            threads.to_string(),
            f2(gflops_g),
            pct(gflops_g / (base_gemm * threads as f64)),
            f2(gflops_s),
            pct(gflops_s / (base_spmv * threads as f64)),
        ]);
        json_rows.push(Json::obj(vec![
            ("threads", Json::Int(threads as i64)),
            ("gemm_gflops", Json::Num(gflops_g)),
            (
                "gemm_efficiency",
                Json::Num(gflops_g / (base_gemm * threads as f64)),
            ),
            ("spmv_gflops", Json::Num(gflops_s)),
            (
                "spmv_efficiency",
                Json::Num(gflops_s / (base_spmv * threads as f64)),
            ),
        ]));
    }
    t.print(&format!(
        "E10: strong scaling — GEMM n={n_gemm} (compute-bound) vs SpMV {g}^3 (memory-bound)"
    ));

    let mut xs = vec![0.0; sp.nrows()];
    let t_gs = best_of(reps, || symgs(&sp, &rhs, &mut xs));
    println!(
        "  SymGS (sequential reference smoother): {:.2} Gflop/s on 1 thread — does not parallelize",
        flops::gflops(4 * sp.nnz() as u64, t_gs)
    );

    // Hosts with few cores cannot show the divergence live; the roofline
    // model projects it. GEMM's arithmetic intensity (~n/12 flops/byte)
    // is compute-bound at any core count; SpMV (~1/6 flops/byte) saturates
    // the memory bus almost immediately.
    let m = xsc_machine::MachineModel::node_2016();
    let bw = m.mem_bw;
    let per_core = m.flops_per_core;
    let mut t2 = Table::new(&[
        "cores",
        "GEMM modeled Gflop/s",
        "SpMV modeled Gflop/s",
        "SpMV % of linear",
    ]);
    let spmv_ai = 1.0 / 6.0; // flops per DRAM byte for CSR SpMV
    for cores in [1usize, 2, 4, 8, 16, 32, 64] {
        let gemm_rate = per_core * cores as f64; // compute-bound: scales
        let spmv_rate = (per_core * cores as f64).min(spmv_ai * bw);
        t2.row(vec![
            cores.to_string(),
            f2(gemm_rate / 1e9),
            f2(spmv_rate / 1e9),
            pct(spmv_rate / (per_core * cores as f64)),
        ]);
    }
    t2.print("E10b: roofline projection (node-2016 model) — why SpMV flatlines");
    println!("  keynote claim: adding cores multiplies flops, not bandwidth; memory-bound");
    println!("  kernels flatline while GEMM keeps scaling.");

    if json {
        let report = Json::obj(vec![
            ("experiment", Json::s("e10_scaling")),
            ("gemm_n", Json::Int(n_gemm as i64)),
            ("spmv_grid", Json::Int(g as i64)),
            ("rows", Json::Arr(json_rows)),
        ]);
        write_report("BENCH_e10.json", &report);
    }
}
