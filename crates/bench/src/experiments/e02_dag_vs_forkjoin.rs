//! E02 — dataflow DAG scheduling vs bulk-synchronous fork-join, with the
//! scheduler-policy ablation (critical-path vs FIFO) DESIGN.md calls out.

use crate::table::{f2, pct, secs, Table};
use crate::{best_of, thread_sweep, with_threads, Scale};
use xsc_core::{gen, TileMatrix};
use xsc_dense::cholesky;
use xsc_dense::poison::Poison;
use xsc_machine::des::{simulate, DesConfig};
use xsc_runtime::{Executor, SchedPolicy};

/// Runs the experiment and prints its table.
pub fn run(scale: Scale) {
    let n = scale.pick(1024, 2048);
    let nb = 128;
    let a = gen::random_spd::<f64>(n, 7);
    let reps = scale.pick(2, 3);

    let mut t = Table::new(&[
        "threads",
        "fork-join",
        "DAG (crit-path)",
        "DAG (fifo)",
        "DAG speedup over FJ",
        "DAG utilization",
    ]);
    for threads in thread_sweep() {
        let t_fj = best_of(reps, || {
            let tiles = TileMatrix::from_matrix(&a, nb);
            with_threads(threads, || cholesky::cholesky_forkjoin(&tiles).unwrap());
        });
        let t_cp = best_of(reps, || {
            let tiles = TileMatrix::from_matrix(&a, nb);
            let exec = Executor::new(threads, SchedPolicy::CriticalPath);
            cholesky::cholesky_dag(&tiles, &exec).unwrap();
        });
        let t_fifo = best_of(reps, || {
            let tiles = TileMatrix::from_matrix(&a, nb);
            let exec = Executor::new(threads, SchedPolicy::Fifo);
            cholesky::cholesky_dag(&tiles, &exec).unwrap();
        });
        // One traced run for utilization.
        let tiles = TileMatrix::from_matrix(&a, nb);
        let exec = Executor::new(threads, SchedPolicy::CriticalPath);
        let trace = cholesky::cholesky_dag(&tiles, &exec).unwrap();
        t.row(vec![
            threads.to_string(),
            secs(t_fj),
            secs(t_cp),
            secs(t_fifo),
            f2(t_fj / t_cp),
            pct(trace.utilization()),
        ]);
    }
    t.print(&format!(
        "E02: tiled Cholesky n={n} nb={nb} — DAG dataflow vs fork-join (live)"
    ));

    // The host may expose only a few cores; the keynote's claim is about
    // many. Replay the same algorithm on modeled machines: dataflow uses
    // the true tile dependences, bulk-synchronous adds a barrier after
    // every step's panel and update phases.
    let nt = scale.pick(16usize, 24);
    let (edges_df, edges_bsp, costs) = cholesky_graphs(nt, nb);
    let ntasks = costs.len();
    let mut t2 = Table::new(&[
        "workers",
        "BSP makespan",
        "DAG makespan",
        "DAG speedup over BSP",
        "BSP utilization",
        "DAG utilization",
    ]);
    for workers in [4usize, 16, 64, 256] {
        let cfg = DesConfig {
            workers,
            comm_delay: 0.0,
        };
        let bsp = simulate(ntasks, &edges_bsp, &costs, cfg);
        let df = simulate(ntasks, &edges_df, &costs, cfg);
        t2.row(vec![
            workers.to_string(),
            format!("{:.3e}", bsp.makespan),
            format!("{:.3e}", df.makespan),
            f2(bsp.makespan / df.makespan),
            pct(bsp.utilization),
            pct(df.utilization),
        ]);
    }
    t2.print(&format!(
        "E02b: DES replay, {nt}x{nt} tiles ({ntasks} tasks) — barriers vs dataflow"
    ));
    println!(
        "  keynote claim: removing step barriers raises utilization; the gap grows with cores."
    );
}

type Edges = Vec<(usize, usize)>;

/// Builds the dataflow and bulk-synchronous edge sets for a tiled Cholesky
/// of `nt × nt` tiles (costs in seconds at 40 Gflop/s per modeled worker).
fn cholesky_graphs(nt: usize, nb: usize) -> (Edges, Edges, Vec<f64>) {
    // Dataflow edges straight from the production graph builder.
    let a = TileMatrix::<f64>::zeros(nt * nb, nt * nb, nb);
    let mut g = cholesky::build_graph(&a, &Poison::new());
    let edges_df = g.edge_list();
    let costs: Vec<f64> = g.costs().into_iter().map(|c| c as f64 / 40e9).collect();

    // Bulk-synchronous edges: a full barrier between consecutive phases
    // (potrf | trsm panel | trailing update) of each step. Task ids follow
    // build_graph's insertion order.
    let mut phases: Vec<Vec<usize>> = Vec::new();
    let mut id = 0usize;
    for k in 0..nt {
        let potrf = vec![id];
        id += 1;
        let trsm: Vec<usize> = (0..nt - k - 1).map(|i| id + i).collect();
        id += trsm.len();
        // syrk + gemm tasks for this step.
        let mut update = Vec::new();
        for i in k + 1..nt {
            update.push(id);
            id += 1;
            for _j in k + 1..i {
                update.push(id);
                id += 1;
            }
        }
        phases.push(potrf);
        if !trsm.is_empty() {
            phases.push(trsm);
        }
        if !update.is_empty() {
            phases.push(update);
        }
    }
    assert_eq!(
        id,
        costs.len(),
        "phase reconstruction out of sync with build_graph"
    );
    let mut edges_bsp = Vec::new();
    for w in phases.windows(2) {
        for &from in &w[0] {
            for &to in &w[1] {
                edges_bsp.push((from, to));
            }
        }
    }
    (edges_df, edges_bsp, costs)
}
