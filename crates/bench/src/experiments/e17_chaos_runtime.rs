//! E17 — chaos campaign over the resilient DAG runtime: fault rate ×
//! fault species × recovery policy on an ABFT-guarded tiled Cholesky.
//!
//! Two tables, deliberately separated:
//!
//! 1. a **deterministic** campaign summary — only schedule-independent
//!    counts (retries, recoveries, skips, detections, injected faults,
//!    simulated backoff) and the solved-system residual. Because
//!    [`FaultPlan`] decides faults from a pure hash of
//!    `(seed, task, attempt)` and retried kernels restore their snapshot
//!    before recomputing, two runs with the same seed produce this table
//!    **byte for byte** — that property is asserted by a test below.
//! 2. a **timing** table (explicitly non-deterministic) — the wall-clock
//!    price of the resilience layer at fault rate 0, versus the plain
//!    fail-stop executor.

use crate::json::{write_report, Json};
use crate::table::{pct, sci, secs, Table};
use crate::{best_of, Scale};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;
use xsc_core::{gen, norms, Matrix, TileMatrix};
use xsc_dense::cholesky;
use xsc_dense::resilient::cholesky_resilient_abft;
use xsc_ft::inject::FaultKind;
use xsc_ft::plan::{ChaosKind, FaultPlan};
use xsc_runtime::{Backoff, Executor, ExhaustedAction, RecoveryPolicy, SchedPolicy, TaskGraph};

/// Campaign base seed: every (rate, kind, policy) cell derives its
/// [`FaultPlan`] seed from this, so the whole sweep replays exactly.
pub const CAMPAIGN_SEED: u64 = 0xE17;

fn policies() -> Vec<(&'static str, RecoveryPolicy)> {
    vec![
        (
            "retry*6",
            RecoveryPolicy::with_max_attempts(6)
                .backoff(Backoff::Jittered {
                    base: Duration::from_micros(20),
                    factor: 2.0,
                    max: Duration::from_millis(1),
                })
                .seed(CAMPAIGN_SEED),
        ),
        (
            "skip*2",
            RecoveryPolicy::with_max_attempts(2).on_exhausted(ExhaustedAction::SkipSubtree),
        ),
    ]
}

fn kinds() -> Vec<(&'static str, ChaosKind)> {
    vec![
        ("panic", ChaosKind::Panic),
        ("bitflip", ChaosKind::SilentCorrupt(FaultKind::BitFlip)),
        ("zero", ChaosKind::SilentCorrupt(FaultKind::Zero)),
        ("stall", ChaosKind::Stall),
    ]
}

struct Problem {
    a: Matrix<f64>,
    b: Vec<f64>,
    nb: usize,
    threads: usize,
}

fn problem(scale: Scale) -> Problem {
    let n = scale.pick(128, 256);
    let nb = scale.pick(16, 32); // 8x8 tile grid at either scale
    let a = gen::random_spd::<f64>(n, 3407);
    let b = gen::rhs_for_unit_solution(&a);
    Problem {
        a,
        b,
        nb,
        threads: 4,
    }
}

/// Installs (once) a panic hook that swallows *injected* chaos panics —
/// they are caught and handled by the resilient executor, and the default
/// hook's per-panic backtrace would otherwise drown the campaign output.
/// Genuine panics still print through the previous hook.
fn silence_chaos_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.starts_with("chaos:"));
            if !injected {
                prev(info);
            }
        }));
    });
}

/// Runs the full campaign and renders the deterministic summary table.
/// See [`campaign_report`] for the machine-readable variant.
pub fn campaign_summary(scale: Scale) -> String {
    campaign_report(scale).0
}

/// Runs the full campaign and builds the deterministic summary: the
/// rendered table plus the machine-readable report written to
/// `BENCH_e17.json` by the binary's `--json` flag.
///
/// Everything in the table and report is schedule-independent: fault
/// decisions are pure hashes, taint propagation is DAG-structural,
/// backoff is simulated (accumulated, never slept beyond the stall
/// species), and a recovered factorization is bitwise identical to a
/// fault-free one. Same seed in, same bytes out — on any thread count.
pub fn campaign_report(scale: Scale) -> (String, Json) {
    silence_chaos_panics();
    let p = problem(scale);
    let mut t = Table::new(&[
        "rate",
        "kind",
        "policy",
        "done",
        "retries",
        "recov",
        "failed",
        "skipped",
        "detect",
        "inj p/c/s",
        "backoff",
        "residual",
    ]);

    let mut cells_json: Vec<Json> = Vec::new();
    let mut cell =
        |rate: f64, kname: &str, kind: Option<ChaosKind>, pname: &str, pol: RecoveryPolicy| {
            let tiles = TileMatrix::from_matrix(&p.a, p.nb);
            let exec = Executor::new(p.threads, SchedPolicy::CriticalPath);
            let plan = kind.map(|k| {
                // Derive a distinct, reproducible seed per campaign cell.
                let seed =
                    CAMPAIGN_SEED ^ ((rate * 1000.0) as u64) << 16 ^ (kname.len() as u64) << 8;
                Arc::new(FaultPlan::new(seed, rate, k).stall_duration(Duration::from_micros(100)))
            });
            let run = cholesky_resilient_abft(&tiles, &exec, pol, plan.clone())
                .expect("campaign matrix is SPD; math errors impossible");
            let stats = run.trace.resilience().expect("resilient run carries stats");
            let residual = if stats.completed() {
                let mut x = p.b.clone();
                cholesky::solve(&tiles, &mut x);
                Some(norms::hpl_scaled_residual(&p.a, &x, &p.b))
            } else {
                None
            };
            let (ip, ic, is) = plan.as_ref().map_or((0, 0, 0), |pl| pl.fired());
            t.row(vec![
                format!("{rate:.2}"),
                kname.into(),
                pname.into(),
                stats.completed().to_string(),
                stats.retries.to_string(),
                stats.recoveries.to_string(),
                stats.permanent_failures.to_string(),
                stats.skipped.to_string(),
                run.detections.to_string(),
                format!("{ip}/{ic}/{is}"),
                format!("{}us", stats.simulated_backoff.as_micros()),
                residual.map_or_else(|| "-".into(), sci),
            ]);
            cells_json.push(Json::obj(vec![
                ("rate", Json::Num(rate)),
                ("kind", Json::s(kname)),
                ("policy", Json::s(pname)),
                ("completed", Json::Bool(stats.completed())),
                ("retries", Json::Int(stats.retries as i64)),
                ("recoveries", Json::Int(stats.recoveries as i64)),
                (
                    "permanent_failures",
                    Json::Int(stats.permanent_failures as i64),
                ),
                ("skipped", Json::Int(stats.skipped as i64)),
                ("detections", Json::Int(run.detections as i64)),
                ("injected_panics", Json::Int(ip as i64)),
                ("injected_corruptions", Json::Int(ic as i64)),
                ("injected_stalls", Json::Int(is as i64)),
                (
                    "simulated_backoff_us",
                    Json::Int(stats.simulated_backoff.as_micros() as i64),
                ),
                ("residual", residual.map_or(Json::Null, Json::Num)),
            ]));
        };

    cell(0.0, "none", None, "retry*6", policies()[0].1);
    for rate in [0.01, 0.05] {
        for (kname, kind) in kinds() {
            for (pname, pol) in policies() {
                cell(rate, kname, Some(kind), pname, pol);
            }
        }
    }

    let nt = p.a.rows() / p.nb;
    let table = t.render(&format!(
        "E17: chaos campaign — ABFT-guarded resilient Cholesky, {}x{} tiles of {} (seed {CAMPAIGN_SEED:#x}, deterministic counts)",
        nt, nt, p.nb
    ));
    let report = Json::obj(vec![
        ("experiment", Json::s("e17_chaos_runtime")),
        ("seed", Json::Int(CAMPAIGN_SEED as i64)),
        ("n", Json::Int(p.a.rows() as i64)),
        ("tile", Json::Int(p.nb as i64)),
        ("threads", Json::Int(p.threads as i64)),
        ("cells", Json::Arr(cells_json)),
    ]);
    (table, report)
}

/// Synthetic DAG with `tasks` independent compute kernels of fixed work —
/// isolates the resilience layer's bookkeeping from ABFT detector cost.
fn synthetic_graph(tasks: usize, work: usize, fallible: bool) -> TaskGraph {
    let mut g = TaskGraph::new();
    let spin = move || {
        let mut acc = 1.000000001f64;
        for i in 0..work {
            acc = acc.mul_add(1.0000001, (i & 7) as f64 * 1e-12);
        }
        black_box(acc);
    };
    for i in 0..tasks {
        if fallible {
            g.add_fallible_task(format!("t{i}"), [], move |_at| {
                spin();
                Ok(())
            });
        } else {
            g.add_task(format!("t{i}"), [], spin);
        }
    }
    g
}

/// Runs the experiment and prints both tables.
pub fn run(scale: Scale) {
    run_opts(scale, false);
}

/// Runs the experiment; with `json` set, also writes `BENCH_e17.json`
/// (the deterministic campaign counts — the wall-clock table is
/// deliberately excluded from the machine-readable report).
pub fn run_opts(scale: Scale, json: bool) {
    let (table, report) = campaign_report(scale);
    print!("{table}");
    if json {
        write_report("BENCH_e17.json", &report);
    }
    println!("  wasted work = retries (re-executed attempts); recovered runs solve to the");
    println!("  same residual as the fault-free row because retried kernels restore their");
    println!("  tile snapshot and recompute bitwise-identically.");

    // ---- timing (non-deterministic, informational) ----
    let p = problem(scale);
    let exec = Executor::new(p.threads, SchedPolicy::CriticalPath);
    let reps = scale.pick(3, 5);

    let tasks = 256;
    let work = scale.pick(20_000, 80_000);
    let plain_synth = best_of(reps, || {
        exec.execute(synthetic_graph(tasks, work, false));
    });
    let resil_synth = best_of(reps, || {
        exec.execute_resilient(synthetic_graph(tasks, work, true), policies()[0].1);
    });

    let plain_chol = best_of(reps, || {
        let tiles = TileMatrix::from_matrix(&p.a, p.nb);
        cholesky::cholesky_dag(&tiles, &exec).unwrap();
    });
    let abft_chol = best_of(reps, || {
        let tiles = TileMatrix::from_matrix(&p.a, p.nb);
        cholesky_resilient_abft(&tiles, &exec, policies()[0].1, None).unwrap();
    });

    let mut t = Table::new(&["workload", "plain", "resilient", "overhead"]);
    t.row(vec![
        format!("synthetic {tasks} tasks (layer only)"),
        secs(plain_synth),
        secs(resil_synth),
        pct(resil_synth / plain_synth - 1.0),
    ]);
    t.row(vec![
        "cholesky (layer + ABFT detector)".into(),
        secs(plain_chol),
        secs(abft_chol),
        pct(abft_chol / plain_chol - 1.0),
    ]);
    t.print("E17: fault-free overhead of the resilience layer (wall clock — NON-deterministic)");
    println!("  keynote claim: at extreme scale faults are continuous events; the runtime,");
    println!("  not the batch system, must own recovery — and the fault domain must shrink");
    println!("  from the job to the task. The campaign shows task-level retry healing");
    println!("  panics and silent corruption at 5% per-task rates with bounded wasted work.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_summary_is_byte_identical_across_runs() {
        // The PR's reproducibility gate: same seed, same bytes — twice,
        // on a live multi-threaded executor. Table and JSON both.
        let (one, j1) = campaign_report(Scale::Quick);
        let (two, j2) = campaign_report(Scale::Quick);
        assert_eq!(one, two, "campaign summary must be deterministic");
        assert_eq!(
            j1.render(),
            j2.render(),
            "JSON report must be deterministic"
        );
        assert!(one.contains("retry*6") && one.contains("skip*2"));
    }

    #[test]
    fn fault_free_layer_overhead_is_modest() {
        // Acceptance: at rate 0 the resilience machinery (fallible
        // kernels, attempt accounting, outcome tracking) stays under 5%
        // makespan overhead on a synthetic DAG where kernels dominate.
        let exec = Executor::new(4, SchedPolicy::CriticalPath);
        let tasks = 128;
        let work = 60_000;
        let plain = best_of(5, || {
            exec.execute(synthetic_graph(tasks, work, false));
        });
        let resil = best_of(5, || {
            exec.execute_resilient(
                synthetic_graph(tasks, work, true),
                RecoveryPolicy::default(),
            );
        });
        let overhead = resil / plain - 1.0;
        assert!(
            overhead < 0.05,
            "resilience layer overhead {:.2}% >= 5% (plain {plain:.4}s resilient {resil:.4}s)",
            overhead * 100.0
        );
    }
}
