//! E20 — SDC chaos campaign: protected vs unprotected MG-preconditioned
//! CG (the HPCG solve) under escalating memory-fault rates.
//!
//! Every trial runs the same HPCG-style solve twice against the same
//! seeded [`MemFaultPlan`]: once through [`protected_pcg`] (ABFT
//! checksummed SpMV, curvature/norm-jump audits, residual-drift checks,
//! self-checking V-cycle, bounded-rollback checkpoints) and once through
//! [`unprotected_pcg`] (same loop, no detectors). The campaign sweeps
//! per-iteration fault rates and reports, per rate:
//!
//! * **detection rate** over *detectable material* injections — matrix,
//!   iterate, and residual corruptions whose magnitude is large enough to
//!   move the solve past its tolerance. Search-direction corruptions are
//!   tallied separately: corrupting `p` leaves `r = b − Ax` consistent
//!   (CG merely continues from a perturbed descent direction and
//!   self-corrects), so no residual invariant can — or needs to — flag
//!   them; validated convergence still guarantees the answer. Likewise
//!   sub-threshold corruptions (e.g. an exponent flip on a `0.0` or an
//!   already-tiny entry) cannot push the solve off by more than the
//!   tolerance, so they are excluded from the denominator rather than
//!   counted as free detections.
//! * **false positives** — detections during rate-0 runs (must be zero;
//!   the rate-0 protected run is also asserted bit-identical to plain
//!   [`xsc_sparse::pcg`]).
//! * **iteration overhead** — executed iterations (replays included)
//!   versus the fault-free baseline.
//! * **detector overhead** — extra flops and bytes of the protected arm
//!   at rate 0, from the `xsc-metrics` counters (no wall clock anywhere:
//!   every number in the summary is schedule-independent, and a test
//!   asserts the whole report is byte-identical across runs).
//!
//! The unprotected arm's scoreboard is the keynote's nightmare in
//! miniature: runs that either never converge or "converge" by their own
//! recurrence while the recomputed `‖b − Ax‖/‖b‖` says otherwise.

use crate::json::{write_report, Json};
use crate::measured::leaf_sum;
use crate::table::{pct, Table};
use crate::Scale;
use std::time::Duration;
use xsc_ft::inject::FaultKind;
use xsc_ft::sdc::{
    protected_pcg, unprotected_pcg, MemFaultPlan, ProtectConfig, SdcReport, SolverBuffer,
};
use xsc_runtime::RecoveryPolicy;
use xsc_sparse::mg::{MgPreconditioner, Smoother};
use xsc_sparse::stencil::{build_matrix, build_rhs, Geometry};
use xsc_sparse::{pcg, FormatMatrix, SparseFormat};

/// Campaign base seed; every (rate, trial) cell derives its plan seed from
/// this, so the whole sweep replays byte-for-byte.
pub const CAMPAIGN_SEED: u64 = 0xE20;

/// Per-iteration fault rates the campaign escalates through.
pub const FAULT_RATES: [f64; 4] = [0.0, 0.05, 0.10, 0.20];

/// Acceptance floor on the detection rate over detectable material
/// injections, at every nonzero fault rate.
pub const MIN_DETECTION_RATE: f64 = 0.95;

/// Acceptance ceiling on executed iterations (replays included) at the
/// highest fault rate, as a multiple of the fault-free iteration count.
pub const MAX_ITERATION_OVERHEAD: f64 = 2.0;

/// Convergence tolerance of every campaign solve.
const TOL: f64 = 1e-8;

/// Iteration budget per solve (MG-CG needs ~a dozen).
const MAX_ITERS: usize = 100;

struct CampaignProblem {
    a_csr: xsc_sparse::CsrMatrix<f64>,
    b: Vec<f64>,
    mg: MgPreconditioner,
    trials: usize,
}

fn problem(scale: Scale) -> CampaignProblem {
    let g = scale.pick(8usize, 16);
    let levels = scale.pick(2usize, 3);
    let geom = Geometry::new(g, g, g);
    let a_csr = build_matrix(geom);
    let (b, _) = build_rhs(&a_csr);
    let mg =
        MgPreconditioner::try_with_format(geom, levels, Smoother::SymGs, SparseFormat::CsrUsize)
            .expect("campaign geometry is coarsenable");
    CampaignProblem {
        a_csr,
        b,
        mg,
        trials: scale.pick(8, 12),
    }
}

/// Tight detector cadence for the campaign: drift-check every iteration
/// and checkpoint every other one, so a detected corruption costs at most
/// a couple of replayed iterations.
fn campaign_config() -> ProtectConfig {
    ProtectConfig {
        checkpoint_interval: 2,
        drift_check_interval: 1,
        ..ProtectConfig::default()
    }
}

fn campaign_policy() -> RecoveryPolicy {
    RecoveryPolicy::capped_exponential(
        10,
        Duration::from_micros(100),
        2.0,
        Duration::from_millis(5),
        CAMPAIGN_SEED,
    )
}

fn plan_for(rate: f64, trial: usize) -> MemFaultPlan {
    let seed = CAMPAIGN_SEED ^ (((rate * 1000.0) as u64) << 24) ^ ((trial as u64) << 8);
    MemFaultPlan::new(seed, rate, FaultKind::BitFlip)
}

/// An injection only *must* be detected when it is material (big enough to
/// move the solve past its tolerance) and lands in a buffer whose
/// corruption breaks a residual invariant (`p` does not — see module
/// docs). `delta_rel` is per-component-scaled, drift is `‖·‖/‖b‖`-scaled,
/// so the √n bridges the two; the extra 10x keeps the class boundary well
/// clear of the detector threshold (bit-61 flips are bimodal — factors of
/// `2^±512` — so essentially nothing lands near the boundary).
fn is_detectable(inj: &xsc_ft::sdc::InjectionRecord, n: usize, cfg: &ProtectConfig) -> bool {
    inj.buffer != SolverBuffer::SearchDirection
        && inj.delta_rel > cfg.drift_tol * (n as f64).sqrt() * 10.0
}

/// `true` when some detector fired in the same sweep at or after the
/// injection — i.e. the corrupted state was flagged before it could be
/// committed past a validated checkpoint.
fn was_detected(inj: &xsc_ft::sdc::InjectionRecord, rep: &SdcReport) -> bool {
    rep.detections
        .iter()
        .any(|d| d.sweep == inj.sweep && d.iteration >= inj.iteration)
}

struct RateCell {
    rate: f64,
    protected: Vec<SdcReport>,
    unprotected: Vec<SdcReport>,
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Runs the full campaign and builds the deterministic summary: the
/// rendered table plus the machine-readable report. Same seed in, same
/// bytes out — asserted by a test below and by CI running the binary
/// twice and `cmp`-ing the JSON.
pub fn campaign_summary(scale: Scale) -> (String, Json) {
    let p = problem(scale);
    let n = p.a_csr.nrows();
    let cfg = campaign_config();
    let policy = campaign_policy();

    // Fault-free reference (plain solver, no detectors, no injection).
    let mut x_ref = vec![0.0; n];
    let reference = pcg(&p.a_csr, &p.b, &mut x_ref, MAX_ITERS, TOL, &p.mg);
    assert!(reference.converged, "campaign baseline must converge");
    let baseline_iters = reference.iterations as f64;

    // Detector overhead at rate 0, from the metrics counters (flops come
    // from the reports' own accounting, bytes from the recorded traffic).
    let quiet = plan_for(0.0, usize::MAX);
    let (prot_flops, prot_bytes, unprot_flops, unprot_bytes) = {
        let mut a = FormatMatrix::convert(p.a_csr.clone(), SparseFormat::CsrUsize).unwrap();
        let mut x = vec![0.0; n];
        let (rep, delta) = xsc_metrics::measure(|| {
            protected_pcg(
                &mut a, &p.b, &mut x, MAX_ITERS, TOL, &p.mg, &quiet, &cfg, &policy,
            )
        });
        assert_eq!(
            x, x_ref,
            "rate-0 protected run must be bit-identical to plain pcg"
        );
        assert!(
            rep.detections.is_empty(),
            "rate-0 run raised false positives: {:?}",
            rep.detections
        );

        let mut x2 = vec![0.0; n];
        let (urep, udelta) = xsc_metrics::measure(|| {
            unprotected_pcg(&mut a, &p.b, &mut x2, MAX_ITERS, TOL, &p.mg, &quiet)
        });
        assert_eq!(x2, x_ref, "rate-0 unprotected run must match plain pcg");
        (
            rep.flops,
            leaf_sum(&delta).bytes(),
            urep.flops,
            leaf_sum(&udelta).bytes(),
        )
    };
    let flop_overhead = prot_flops as f64 / unprot_flops as f64 - 1.0;
    let byte_overhead = prot_bytes as f64 / unprot_bytes as f64 - 1.0;

    // The sweep.
    let mut cells = Vec::new();
    for &rate in &FAULT_RATES {
        let mut cell = RateCell {
            rate,
            protected: Vec::new(),
            unprotected: Vec::new(),
        };
        for trial in 0..p.trials {
            let plan = plan_for(rate, trial);
            let mut a = FormatMatrix::convert(p.a_csr.clone(), SparseFormat::CsrUsize).unwrap();
            let mut x = vec![0.0; n];
            cell.protected.push(protected_pcg(
                &mut a, &p.b, &mut x, MAX_ITERS, TOL, &p.mg, &plan, &cfg, &policy,
            ));
            // Fresh operator: the unprotected arm must see the same
            // pristine matrix and the same fault schedule.
            let mut a2 = FormatMatrix::convert(p.a_csr.clone(), SparseFormat::CsrUsize).unwrap();
            let mut x2 = vec![0.0; n];
            cell.unprotected.push(unprotected_pcg(
                &mut a2, &p.b, &mut x2, MAX_ITERS, TOL, &p.mg, &plan,
            ));
        }
        cells.push(cell);
    }

    let mut t = Table::new(&[
        "rate",
        "arm",
        "converged",
        "mean iters",
        "mean exec",
        "rollbacks",
        "inj (mat/p/sub)",
        "detected",
        "det rate",
        "silently wrong",
    ]);
    let mut json_rates = Vec::new();
    for cell in &cells {
        // --- protected arm -------------------------------------------
        let trials = cell.protected.len();
        let conv = cell
            .protected
            .iter()
            .filter(|r| r.outcome.converged())
            .count();
        let mean_iters = mean(
            cell.protected
                .iter()
                .map(|r| r.residual_history.len().saturating_sub(1) as f64),
        );
        let mean_exec = mean(cell.protected.iter().map(|r| r.executed_iterations as f64));
        let rollbacks: u64 = cell
            .protected
            .iter()
            .map(|r| r.replayed_iterations as u64)
            .sum();
        let injections: usize = cell.protected.iter().map(|r| r.injections.len()).sum();
        let mut detectable = 0usize;
        let mut detected = 0usize;
        let mut p_faults = 0usize;
        let mut subthreshold = 0usize;
        for rep in &cell.protected {
            for inj in &rep.injections {
                if inj.buffer == SolverBuffer::SearchDirection {
                    p_faults += 1;
                } else if !is_detectable(inj, n, &cfg) {
                    subthreshold += 1;
                } else {
                    detectable += 1;
                    if was_detected(inj, rep) {
                        detected += 1;
                    }
                }
            }
        }
        let det_rate = if detectable == 0 {
            1.0
        } else {
            detected as f64 / detectable as f64
        };
        let false_positives: usize = if cell.rate == 0.0 {
            cell.protected.iter().map(|r| r.detections.len()).sum()
        } else {
            0
        };
        t.row(vec![
            format!("{:.2}", cell.rate),
            "protected".into(),
            format!("{conv}/{trials}"),
            format!("{mean_iters:.2}"),
            format!("{mean_exec:.2}"),
            rollbacks.to_string(),
            format!("{injections} ({detectable}/{p_faults}/{subthreshold})"),
            detected.to_string(),
            format!("{:.0}%", det_rate * 100.0),
            "-".into(),
        ]);

        // --- unprotected arm -----------------------------------------
        let uconv_claimed = cell
            .unprotected
            .iter()
            .filter(|r| r.outcome.converged())
            .count();
        // `!(.. <= ..)` so a NaN true residual counts as wrong/failed.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        let silently_wrong = cell
            .unprotected
            .iter()
            .filter(|r| r.outcome.converged() && !(r.final_true_residual <= TOL * 100.0))
            .count();
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        let truly_failed = cell
            .unprotected
            .iter()
            .filter(|r| !(r.final_true_residual <= TOL * 100.0))
            .count();
        let umean_iters = mean(
            cell.unprotected
                .iter()
                .map(|r| r.executed_iterations as f64),
        );
        let uinjections: usize = cell.unprotected.iter().map(|r| r.injections.len()).sum();
        t.row(vec![
            format!("{:.2}", cell.rate),
            "unprotected".into(),
            format!("{uconv_claimed}/{trials}"),
            format!("{umean_iters:.2}"),
            format!("{umean_iters:.2}"),
            "0".into(),
            format!("{uinjections}"),
            "-".into(),
            "-".into(),
            silently_wrong.to_string(),
        ]);

        // --- acceptance assertions (deterministic: seeds are fixed) ---
        if cell.rate == 0.0 {
            assert_eq!(false_positives, 0, "rate-0 false positives");
            assert_eq!(conv, trials, "rate-0 protected runs must all converge");
        } else {
            assert!(
                det_rate >= MIN_DETECTION_RATE,
                "rate {:.2}: detection rate {det_rate:.3} below {MIN_DETECTION_RATE}",
                cell.rate
            );
            assert_eq!(
                conv, trials,
                "rate {:.2}: protected arm failed to converge every trial",
                cell.rate
            );
            for rep in &cell.protected {
                assert!(
                    rep.final_true_residual <= TOL * 100.0,
                    "protected convergence must be genuine: {:.3e}",
                    rep.final_true_residual
                );
            }
        }
        if cell.rate == FAULT_RATES[FAULT_RATES.len() - 1] {
            assert!(
                mean_exec <= MAX_ITERATION_OVERHEAD * baseline_iters,
                "iteration overhead {:.2}x exceeds {MAX_ITERATION_OVERHEAD}x at rate {:.2}",
                mean_exec / baseline_iters,
                cell.rate
            );
        }

        json_rates.push(Json::obj(vec![
            ("rate", Json::Num(cell.rate)),
            (
                "protected",
                Json::obj(vec![
                    ("trials", Json::Int(trials as i64)),
                    ("converged", Json::Int(conv as i64)),
                    ("mean_iterations", Json::Num(mean_iters)),
                    ("mean_executed_iterations", Json::Num(mean_exec)),
                    ("replayed_iterations", Json::Int(rollbacks as i64)),
                    ("injections", Json::Int(injections as i64)),
                    ("detectable_injections", Json::Int(detectable as i64)),
                    ("search_direction_injections", Json::Int(p_faults as i64)),
                    ("subthreshold_injections", Json::Int(subthreshold as i64)),
                    ("detected", Json::Int(detected as i64)),
                    ("detection_rate", Json::Num(det_rate)),
                    ("false_positives", Json::Int(false_positives as i64)),
                    (
                        "iteration_overhead_vs_baseline",
                        Json::Num(mean_exec / baseline_iters),
                    ),
                ]),
            ),
            (
                "unprotected",
                Json::obj(vec![
                    ("trials", Json::Int(trials as i64)),
                    ("claimed_converged", Json::Int(uconv_claimed as i64)),
                    ("silently_wrong", Json::Int(silently_wrong as i64)),
                    ("truly_failed", Json::Int(truly_failed as i64)),
                    ("mean_iterations", Json::Num(umean_iters)),
                    ("injections", Json::Int(uinjections as i64)),
                ]),
            ),
        ]));
    }

    let g = (n as f64).cbrt().round() as usize;
    let table = t.render(&format!(
        "E20: SDC chaos campaign — MG-CG on the {g}^3 stencil, bit-flip faults \
         (seed {CAMPAIGN_SEED:#x}, deterministic counts)"
    ));
    let report = Json::obj(vec![
        ("experiment", Json::s("e20_sdc_campaign")),
        ("seed", Json::Int(CAMPAIGN_SEED as i64)),
        ("grid", Json::Int(g as i64)),
        ("trials_per_cell", Json::Int(p.trials as i64)),
        ("tolerance", Json::Num(TOL)),
        ("baseline_iterations", Json::Num(baseline_iters)),
        ("min_detection_rate", Json::Num(MIN_DETECTION_RATE)),
        ("max_iteration_overhead", Json::Num(MAX_ITERATION_OVERHEAD)),
        ("detector_flop_overhead", Json::Num(flop_overhead)),
        ("detector_byte_overhead", Json::Num(byte_overhead)),
        ("rates", Json::Arr(json_rates)),
    ]);
    (table, report)
}

/// Runs the experiment and prints its table.
pub fn run(scale: Scale) {
    run_opts(scale, false);
}

/// Runs the experiment; with `json` set, also writes `BENCH_e20.json`.
pub fn run_opts(scale: Scale, json: bool) {
    let (table, report) = campaign_summary(scale);
    print!("{table}");
    if let Json::Obj(pairs) = &report {
        for (k, v) in pairs {
            if k == "detector_flop_overhead" {
                if let Json::Num(x) = v {
                    println!("  detector overhead at rate 0: {} extra flops,", pct(*x));
                }
            }
            if k == "detector_byte_overhead" {
                if let Json::Num(x) = v {
                    println!(
                        "  {} extra bytes (xsc-metrics counters; no wall clock).",
                        pct(*x)
                    );
                }
            }
        }
    }
    println!("  keynote claim: at extreme scale silent data corruption is an event, not an");
    println!("  exception. The protected solve detects material corruption of the matrix,");
    println!("  iterate, and residual, rolls back at most a couple of iterations, and only");
    println!("  reports convergence it has re-verified; the unprotected arm either stalls");
    println!("  or converges to a wrong answer its own recurrence cannot see.");
    if json {
        write_report("BENCH_e20.json", &report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_summary_is_byte_identical_across_runs() {
        // The PR's reproducibility gate: same seed, same bytes — table
        // and JSON both, twice, in one process.
        let (t1, j1) = campaign_summary(Scale::Quick);
        let (t2, j2) = campaign_summary(Scale::Quick);
        assert_eq!(t1, t2, "campaign table must be deterministic");
        assert_eq!(
            j1.render(),
            j2.render(),
            "JSON report must be deterministic"
        );
        assert!(t1.contains("protected") && t1.contains("unprotected"));
    }
}
