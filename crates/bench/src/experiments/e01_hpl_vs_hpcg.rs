//! E01 — the headline figure: HPL runs near peak, HPCG at a few percent.
//!
//! "Peak" is the machine's best measured parallel `dgemm` rate (the honest
//! single-node analogue of the spec-sheet peak HPL divides by).

use crate::table::{f2, pct, secs, Table};
use crate::Scale;
use xsc_dense::hpl;
use xsc_sparse::{run_hpcg, Geometry};

/// Runs the experiment and prints its table.
pub fn run(scale: Scale) {
    let peak = hpl::measure_peak_gflops(scale.pick(256, 512), 3);
    println!("\n[E01] measured machine peak (parallel dgemm): {peak:.2} Gflop/s");

    let mut t = Table::new(&[
        "benchmark",
        "problem",
        "time",
        "Gflop/s",
        "% of peak",
        "check",
    ]);
    let hpl_sizes: Vec<usize> = scale.pick(vec![512, 768, 1024], vec![1024, 2048, 4096]);
    for n in hpl_sizes {
        let r = hpl::run_hpl(n, 128, 42).expect("HPL run failed");
        t.row(vec![
            "HPL-like (dense LU)".into(),
            format!("n={n}"),
            secs(r.seconds),
            f2(r.gflops),
            pct(r.gflops / peak),
            if r.passed {
                "resid OK".into()
            } else {
                "RESID FAIL".into()
            },
        ]);
    }
    let grids: Vec<usize> = scale.pick(vec![32, 48], vec![64, 96]);
    for g in grids {
        let r = run_hpcg(Geometry::new(g, g, g), 3, 50);
        t.row(vec![
            "HPCG-like (MG-PCG)".into(),
            format!("{g}^3 grid"),
            secs(r.seconds),
            f2(r.gflops),
            pct(r.gflops / peak),
            if r.passed {
                "conv OK".into()
            } else {
                "CONV FAIL".into()
            },
        ]);
    }
    t.print("E01: HPL vs HPCG — % of measured peak");
    println!("  keynote claim: HPL at a large fraction of peak, HPCG at 1-5%.");
}
