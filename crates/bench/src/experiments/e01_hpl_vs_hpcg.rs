//! E01 — the headline figure: HPL runs near peak, HPCG at a few percent.
//!
//! "Peak" is the machine's best measured parallel `dgemm` rate — since the
//! cache-blocked GEMM rewrite, the packed blocked kernel parallelized over
//! column macro-tiles (the honest single-node analogue of the spec-sheet
//! peak HPL divides by). The old column-sweep kernel is timed alongside as
//! the before/after record of that rewrite.

use crate::json::{write_report, Json};
use crate::measured::{kernel, leaf_sum};
use crate::table::{f2, pct, secs, Table};
use crate::{best_of, Scale};
use xsc_core::gemm::{colsweep_gemm, gemm, Transpose};
use xsc_core::{flops, gen, Matrix};
use xsc_dense::hpl;
use xsc_machine::KernelProfile;
use xsc_sparse::{run_hpcg_fmt, Geometry, SparseFormat};

/// Blocked vs column-sweep sequential kernel rates at `s`^3 (Gflop/s).
fn kernel_rates(s: usize, reps: usize) -> (f64, f64) {
    let a = gen::random_matrix::<f64>(s, s, 1);
    let b = gen::random_matrix::<f64>(s, s, 2);
    let mut c = Matrix::<f64>::zeros(s, s);
    let fl = flops::gemm(s, s, s);
    let t_sweep = best_of(reps, || {
        colsweep_gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, &mut c)
    });
    let t_blocked = best_of(reps, || {
        gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, &mut c)
    });
    (flops::gflops(fl, t_blocked), flops::gflops(fl, t_sweep))
}

/// Runs the experiment and prints its table.
pub fn run(scale: Scale) {
    run_opts(scale, false);
}

/// Runs the experiment; with `json` set, also writes `BENCH_e01.json`.
pub fn run_opts(scale: Scale, json: bool) {
    let peak = hpl::measure_peak_gflops(scale.pick(256, 512), 3);
    println!("\n[E01] measured machine peak (parallel blocked dgemm): {peak:.2} Gflop/s");

    // Before/after record of the blocked-GEMM rewrite, at the size the
    // #[ignore] perf gate in xsc-core asserts on.
    let gemm_s = 512;
    let (blocked_gf, sweep_gf) = kernel_rates(gemm_s, scale.pick(3, 5));
    println!(
        "[E01] sequential dgemm at {gemm_s}^3: blocked {blocked_gf:.2} Gflop/s ({}) vs column-sweep {sweep_gf:.2} Gflop/s ({}) — {:.2}x",
        pct(blocked_gf / peak),
        pct(sweep_gf / peak),
        blocked_gf / sweep_gf
    );

    let mut rows = Vec::new();
    let mut t = Table::new(&[
        "benchmark",
        "problem",
        "time",
        "Gflop/s",
        "% of peak",
        "f/B model",
        "f/B meas",
        "GB moved",
        "check",
    ]);
    let hpl_sizes: Vec<usize> = scale.pick(vec![512, 768, 1024], vec![1024, 2048, 4096]);
    for n in hpl_sizes {
        let (r, delta) = xsc_metrics::measure(|| hpl::run_hpl(n, 128, 42));
        let r = r.expect("HPL run failed");
        let lu = kernel(&delta, "hpl_lu");
        let model = KernelProfile::hpl(n, 128);
        t.row(vec![
            "HPL-like (dense LU)".into(),
            format!("n={n}"),
            secs(r.seconds),
            f2(r.gflops),
            pct(r.gflops / peak),
            f2(model.flops / model.dram_bytes),
            f2(lu.intensity()),
            f2(lu.bytes() as f64 / 1e9),
            if r.passed {
                "resid OK".into()
            } else {
                "RESID FAIL".into()
            },
        ]);
        rows.push(Json::obj(vec![
            ("benchmark", Json::s("hpl")),
            ("n", Json::Int(n as i64)),
            ("seconds", Json::Num(r.seconds)),
            ("gflops", Json::Num(r.gflops)),
            ("fraction_of_peak", Json::Num(r.gflops / peak)),
            (
                "modeled_intensity",
                Json::Num(model.flops / model.dram_bytes),
            ),
            ("measured_intensity", Json::Num(lu.intensity())),
            ("measured_bytes", Json::Int(lu.bytes() as i64)),
            ("measured_flops", Json::Int(lu.flops as i64)),
            ("passed", Json::Bool(r.passed)),
        ]));
    }
    let grids: Vec<usize> = scale.pick(vec![32, 48], vec![64, 96]);
    for g in grids {
        // The usize-CSR baseline and the bandwidth-lean Csr32 path: same
        // solve (bit-identical iterates), half the matrix stream.
        for fmt in [SparseFormat::CsrUsize, SparseFormat::Csr32] {
            let (r, delta) =
                xsc_metrics::measure(|| run_hpcg_fmt(Geometry::new(g, g, g), 3, 50, fmt));
            let leaf = leaf_sum(&delta);
            let model = KernelProfile::hpcg(g.pow(3), 27 * g.pow(3), 50);
            t.row(vec![
                format!("HPCG-like ({})", fmt.name()),
                format!("{g}^3 grid"),
                secs(r.seconds),
                f2(r.gflops),
                pct(r.gflops / peak),
                f2(model.flops / model.dram_bytes),
                f2(leaf.intensity()),
                f2(leaf.bytes() as f64 / 1e9),
                if r.passed {
                    "conv OK".into()
                } else {
                    "CONV FAIL".into()
                },
            ]);
            rows.push(Json::obj(vec![
                ("benchmark", Json::s("hpcg")),
                ("format", Json::s(fmt.name())),
                ("grid", Json::Int(g as i64)),
                ("seconds", Json::Num(r.seconds)),
                ("gflops", Json::Num(r.gflops)),
                ("fraction_of_peak", Json::Num(r.gflops / peak)),
                (
                    "modeled_intensity",
                    Json::Num(model.flops / model.dram_bytes),
                ),
                ("measured_intensity", Json::Num(leaf.intensity())),
                ("measured_bytes", Json::Int(leaf.bytes() as i64)),
                ("measured_flops", Json::Int(leaf.flops as i64)),
                ("passed", Json::Bool(r.passed)),
            ]));
        }
    }
    t.print("E01: HPL vs HPCG — % of measured peak, with measured flop/byte intensity");
    println!("  keynote claim: HPL at a large fraction of peak, HPCG at 1-5%; the f/B");
    println!("  columns (model: xsc-machine profiles; meas: xsc-metrics counters) show why —");
    println!("  dense LU does tens of flops per byte (~nb/8 measured; the model counts");
    println!("  one-way streaming, ~nb/4), MG-PCG less than a tenth of one.");

    if json {
        let report = Json::obj(vec![
            ("experiment", Json::s("e01_hpl_vs_hpcg")),
            ("peak_gflops", Json::Num(peak)),
            (
                "gemm_kernels",
                Json::obj(vec![
                    ("size", Json::Int(gemm_s as i64)),
                    ("blocked_gflops", Json::Num(blocked_gf)),
                    ("colsweep_gflops", Json::Num(sweep_gf)),
                    ("blocked_fraction_of_peak", Json::Num(blocked_gf / peak)),
                    ("colsweep_fraction_of_peak", Json::Num(sweep_gf / peak)),
                    ("speedup", Json::Num(blocked_gf / sweep_gf)),
                ]),
            ),
            ("rows", Json::Arr(rows)),
        ]);
        write_report("BENCH_e01.json", &report);
    }
}
