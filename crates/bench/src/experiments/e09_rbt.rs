//! E09 — randomization instead of pivoting: random butterfly transforms
//! make no-pivot LU safe, removing the pivot search's synchronization.

use crate::table::{sci, secs, Table};
use crate::{best_of, Scale};
use xsc_core::{factor, gen, norms};
use xsc_dense::rbt::rbt_lu;

/// Runs the experiment and prints its table.
pub fn run(scale: Scale) {
    let sizes: Vec<usize> = scale.pick(vec![256, 512], vec![512, 1024]);
    let reps = scale.pick(2, 3);
    let mut t = Table::new(&["n", "method", "factor+solve time", "relative residual"]);
    for n in sizes {
        // Adversarial: tiny leading pivot breaks plain no-pivot LU.
        let mut a = gen::random_matrix::<f64>(n, n, 31);
        a.set(0, 0, 1e-13);
        let b = gen::rhs_for_unit_solution(&a);

        // Partial pivoting (the safe, synchronizing baseline).
        let mut xp = Vec::new();
        let tp = best_of(reps, || {
            let mut f = a.clone();
            let piv = factor::getrf_blocked(&mut f, 64).unwrap();
            xp = b.clone();
            factor::getrf_solve(&f, &piv, &mut xp);
        });
        t.row(vec![
            n.to_string(),
            "LU, partial pivoting".into(),
            secs(tp),
            sci(norms::relative_residual(&a, &xp, &b)),
        ]);

        // No pivoting at all: numerically unsafe on this matrix.
        let nopiv_resid = match factor::getrf_nopiv(&mut a.clone()) {
            Err(_) => f64::INFINITY,
            Ok(()) => {
                let mut f = a.clone();
                factor::getrf_nopiv(&mut f).unwrap();
                let mut x = b.clone();
                factor::getrf_nopiv_solve(&f, &mut x);
                norms::relative_residual(&a, &x, &b)
            }
        };
        t.row(vec![
            n.to_string(),
            "LU, no pivoting".into(),
            "-".into(),
            if nopiv_resid.is_finite() {
                sci(nopiv_resid)
            } else {
                "breakdown".into()
            },
        ]);

        // RBT + no pivoting.
        let mut xr = Vec::new();
        let tr = best_of(reps, || {
            let f = rbt_lu(&a, 2, 77).unwrap();
            xr = b.clone();
            f.solve(&mut xr);
        });
        t.row(vec![
            n.to_string(),
            "RBT + LU, no pivoting".into(),
            secs(tr),
            sci(norms::relative_residual(&a, &xr, &b)),
        ]);
    }
    t.print("E09: random butterfly transform vs pivoting (adversarial matrix)");
    println!("  keynote claim: randomization restores no-pivot stability at O(n^2) cost,");
    println!("  eliminating the per-column pivot search and its synchronization.");
}
