//! E03 — mixed-precision iterative refinement vs full f64 solve, with the
//! stopping-criterion ablation (default √n·ε vs loose 1e-8).

use crate::table::{sci, secs, Table};
use crate::{best_of, Scale};
use xsc_core::{gen, norms};
use xsc_precision::ir::{full_f64_solve, lu_ir_solve};
use xsc_precision::Half;

/// Runs the experiment and prints its table.
pub fn run(scale: Scale) {
    let sizes: Vec<usize> = scale.pick(vec![256, 512, 768], vec![512, 1024, 2048]);
    let reps = scale.pick(2, 3);
    let mut t = Table::new(&[
        "n",
        "method",
        "time",
        "speedup vs f64",
        "IR iters",
        "scaled residual",
    ]);
    for n in sizes {
        let a = gen::diag_dominant::<f64>(n, 11);
        let b = gen::rhs_for_unit_solution(&a);

        let mut x64 = Vec::new();
        let t64 = best_of(reps, || x64 = full_f64_solve(&a, &b).unwrap());
        t.row(vec![
            n.to_string(),
            "f64 direct".into(),
            secs(t64),
            "1.00".into(),
            "-".into(),
            sci(norms::hpl_scaled_residual(&a, &x64, &b)),
        ]);

        let mut out32 = None;
        let t32 = best_of(reps, || {
            out32 = Some(lu_ir_solve::<f32>(&a, &b, 30, None).unwrap())
        });
        let (x32, rep32) = out32.unwrap();
        t.row(vec![
            n.to_string(),
            "f32 LU + IR".into(),
            secs(t32),
            format!("{:.2}", t64 / t32),
            rep32.iterations.to_string(),
            sci(norms::hpl_scaled_residual(&a, &x32, &b)),
        ]);

        // Ablation: loose tolerance stops refinement earlier.
        let (_, rep_loose) = lu_ir_solve::<f32>(&a, &b, 30, Some(1e-8)).unwrap();
        t.row(vec![
            n.to_string(),
            "f32 LU + IR (tol 1e-8)".into(),
            "-".into(),
            "-".into(),
            rep_loose.iterations.to_string(),
            sci(*rep_loose.residual_history.last().unwrap()),
        ]);

        if n <= 512 {
            // fp16 emulation is software-rounded (slow), so keep it small;
            // the point is the iteration count, not the wall clock.
            let (x16, rep16) = lu_ir_solve::<Half>(&a, &b, 60, None).unwrap();
            t.row(vec![
                n.to_string(),
                "fp16(emu) LU + IR".into(),
                "-".into(),
                "-".into(),
                rep16.iterations.to_string(),
                sci(norms::hpl_scaled_residual(&a, &x16, &b)),
            ]);
        }
    }
    t.print("E03: mixed-precision iterative refinement");
    println!("  keynote claim: factor in 32-bit, refine to 64-bit accuracy, ~2x speedup");
    println!("  (fp32 arithmetic is ~2x f64 on SIMD hardware; this scalar build shows");
    println!("  a smaller but consistent ratio plus the accuracy-recovery behaviour).");
}
