//! E12 — resilience strategies for iterative solvers under silent faults:
//! checkpoint/rollback vs detect-and-restart, across fault rates.

use crate::json::{write_report, Json};
use crate::table::{sci, Table};
use crate::Scale;
use xsc_ft::checkpoint::{resilient_cg, Recovery};
use xsc_ft::inject::{FaultInjector, FaultKind};
use xsc_sparse::stencil::{build_matrix, build_rhs, Geometry};

/// Runs the experiment and prints its table.
pub fn run(scale: Scale) {
    run_opts(scale, false);
}

/// Runs the experiment; with `json` set, also writes `BENCH_e12.json`.
pub fn run_opts(scale: Scale, json: bool) {
    let g = scale.pick(8, 16);
    let geom = Geometry::new(g, g, g);
    let a = build_matrix(geom);
    let (mut b, _) = build_rhs(&a);
    // Rough rhs so CG needs enough iterations to expose the fault window.
    for (i, bi) in b.iter_mut().enumerate() {
        *bi += ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
    }

    let mut t = Table::new(&[
        "fault rate",
        "strategy",
        "converged",
        "iterations",
        "faults",
        "recoveries",
        "wasted iters",
        "final residual",
    ]);
    let mut rows = Vec::new();
    for rate in [0.0, 0.02, 0.05, 0.10] {
        for (name, strategy) in [
            ("checkpoint/10", Recovery::Checkpoint { interval: 10 }),
            ("restart", Recovery::Restart),
        ] {
            let mut inj = FaultInjector::new(rate, FaultKind::BitFlip, 1234);
            let rep = resilient_cg(&a, &b, 5000, 1e-9, &mut inj, strategy, 5, 1e-6);
            t.row(vec![
                format!("{rate:.2}"),
                name.into(),
                rep.converged.to_string(),
                rep.iterations.to_string(),
                rep.faults.to_string(),
                rep.recoveries.to_string(),
                rep.wasted_iterations.to_string(),
                sci(rep.final_residual),
            ]);
            rows.push(Json::obj(vec![
                ("fault_rate", Json::Num(rate)),
                ("strategy", Json::s(name)),
                ("converged", Json::Bool(rep.converged)),
                ("iterations", Json::Int(rep.iterations as i64)),
                ("faults", Json::Int(rep.faults as i64)),
                ("recoveries", Json::Int(rep.recoveries as i64)),
                ("wasted_iterations", Json::Int(rep.wasted_iterations as i64)),
                ("final_residual", Json::Num(rep.final_residual)),
            ]));
        }
    }
    t.print(&format!(
        "E12: fault-injected CG on the {g}^3 stencil — recovery strategies"
    ));
    println!("  keynote claim: at extreme scale faults are events, not exceptions; solvers");
    println!("  must detect silent corruption and recover with bounded re-done work.");
    if json {
        let report = Json::obj(vec![
            ("experiment", Json::s("e12_resilience_cg")),
            ("grid", Json::Int(g as i64)),
            ("runs", Json::Arr(rows)),
        ]);
        write_report("BENCH_e12.json", &report);
    }
}
