//! E07 — batched small-matrix BLAS vs the one-call-per-matrix loop.

use crate::table::{f2, secs, Table};
use crate::{best_of, Scale};
use xsc_batched::{batched_gemm, batched_potrf, looped_gemm, Batch};
use xsc_core::flops;

/// Runs the experiment and prints its table.
pub fn run(scale: Scale) {
    let total_flops: u64 = scale.pick(200_000_000, 2_000_000_000);
    let reps = scale.pick(2, 3);
    let mut t = Table::new(&[
        "matrix size",
        "batch count",
        "looped",
        "batched",
        "speedup",
        "batched Gflop/s",
    ]);
    for m in [4usize, 8, 16, 32] {
        let per = flops::gemm(m, m, m);
        let count = (total_flops / per).max(1) as usize;
        let a = Batch::<f64>::from_fn(m, m, count, |k, i, j| {
            ((k + i * 3 + j) % 7) as f64 * 0.25 - 0.5
        });
        let b = a.clone();
        let mut c = Batch::<f64>::zeros(m, m, count);
        let t_loop = best_of(reps, || looped_gemm(1.0, &a, &b, 0.0, &mut c));
        let t_batch = best_of(reps, || batched_gemm(1.0, &a, &b, 0.0, &mut c));
        t.row(vec![
            format!("{m}x{m}"),
            count.to_string(),
            secs(t_loop),
            secs(t_batch),
            f2(t_loop / t_batch),
            f2(flops::gflops(per * count as u64, t_batch)),
        ]);
    }
    t.print("E07: batched GEMM vs per-matrix loop (constant total flops)");

    // Batched Cholesky throughput.
    let m = 8usize;
    let count = scale.pick(20_000, 200_000);
    let spd = Batch::<f64>::from_fn(m, m, count, |k, i, j| {
        if i == j {
            (m + (k % 5)) as f64
        } else {
            -0.5 + ((i * j + k) % 3) as f64 * 0.25
        }
    });
    let mut work = spd.clone();
    let t_potrf = best_of(reps, || {
        work = spd.clone();
        batched_potrf(&mut work).unwrap();
    });
    let rate = count as f64 / t_potrf;
    println!(
        "\n  batched potrf: {count} x {m}x{m} factorizations in {:.3}s = {:.0} factors/s",
        t_potrf, rate
    );
    println!("  keynote claim: flat batched execution beats per-call dispatch by integer factors");
    println!("  for tiny matrices, where call overhead rivals the arithmetic.");
}
