//! Helpers for reading `xsc-metrics` counter deltas inside experiments.

use xsc_metrics::KernelCounters;

/// Scopes that aggregate leaf kernels nested inside them ("mg_vcycle"
/// re-counts its smoother's "symgs"/"spmv" entries; "cholesky" the
/// gemm/syrk/trsm its tile tasks run); excluded when summing the distinct
/// measured traffic of a whole solve. "hpl_lu" is *not* here: `par_getrf`
/// fuses its panel and trailing updates inline, so its entry is a leaf.
pub const AGGREGATES: [&str; 2] = ["cholesky", "mg_vcycle"];

/// Field-wise sum of the non-aggregate entries in a
/// [`xsc_metrics::measure`] delta: the distinct leaf-kernel traffic of the
/// measured region, with no double counting from nested scopes.
pub fn leaf_sum(delta: &[(&'static str, KernelCounters)]) -> KernelCounters {
    let mut t = KernelCounters::default();
    for (k, c) in delta {
        if !AGGREGATES.contains(k) {
            t.merge(c);
        }
    }
    t
}

/// The counters one named kernel produced in a `measure` delta (empty
/// counters when it never ran).
pub fn kernel(delta: &[(&'static str, KernelCounters)], name: &str) -> KernelCounters {
    delta
        .iter()
        .find(|(k, _)| *k == name)
        .map(|(_, c)| *c)
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(flops: u64, bytes_read: u64) -> KernelCounters {
        KernelCounters {
            flops,
            bytes_read,
            invocations: 1,
            ..Default::default()
        }
    }

    #[test]
    fn leaf_sum_skips_aggregates() {
        let delta = vec![
            ("hpl_lu", c(5, 50)),
            ("spmv", c(10, 100)),
            ("symgs", c(20, 200)),
            ("mg_vcycle", c(30, 300)),
        ];
        let leaf = leaf_sum(&delta);
        assert_eq!(leaf.flops, 35, "hpl_lu is a leaf, mg_vcycle is not");
        assert_eq!(leaf.bytes_read, 350);
        assert_eq!(kernel(&delta, "mg_vcycle").flops, 30);
        assert!(kernel(&delta, "absent").is_empty());
    }
}
