//! # xsc-bench — the experiment harness
//!
//! One module per keynote table/figure (see `DESIGN.md`'s experiment
//! index). Each experiment prints the series the keynote reports; run one
//! via its binary (`cargo run --release -p xsc-bench --bin e01_hpl_vs_hpcg`)
//! or all of them via `cargo bench -p xsc-bench --bench experiments`.
//!
//! Problem sizes scale with the `XSC_SCALE` environment variable:
//! `quick` (default — seconds per experiment) or `full` (minutes, sharper
//! separation between the compared methods).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod json;
pub mod measured;
pub mod table;

/// Problem-size preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small sizes for CI and `cargo bench` (seconds per experiment).
    Quick,
    /// Paper-shaped sizes (minutes per experiment).
    Full,
}

impl Scale {
    /// Reads `XSC_SCALE` from the environment (`quick` default).
    pub fn from_env() -> Scale {
        match std::env::var("XSC_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Picks between the quick and full variant of a parameter.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// Times a closure in seconds.
pub fn time_it(f: impl FnOnce()) -> f64 {
    let t = std::time::Instant::now();
    f();
    t.elapsed().as_secs_f64()
}

/// Best-of-`reps` timing (picks the minimum — standard for throughput
/// benchmarks, robust against scheduler noise).
pub fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    (0..reps.max(1))
        .map(|_| time_it(&mut f))
        .fold(f64::INFINITY, f64::min)
}

/// Runs a closure on a dedicated rayon pool with `threads` workers.
pub fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build rayon pool")
        .install(f)
}

/// Number of hardware threads available.
pub fn ncpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Thread counts to sweep: 1, 2, 4, ... up to the hardware limit.
pub fn thread_sweep() -> Vec<usize> {
    let max = ncpus();
    let mut v = vec![1usize];
    while *v.last().unwrap() * 2 <= max {
        v.push(v.last().unwrap() * 2);
    }
    if *v.last().unwrap() != max {
        v.push(max);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }

    #[test]
    fn thread_sweep_is_increasing_and_capped() {
        let s = thread_sweep();
        assert_eq!(s[0], 1);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*s.last().unwrap(), ncpus());
    }

    #[test]
    fn timing_helpers_positive() {
        let t = time_it(|| std::thread::sleep(std::time::Duration::from_millis(2)));
        assert!(t >= 0.002);
        let b = best_of(3, || {});
        assert!(b >= 0.0);
    }

    #[test]
    fn with_threads_runs_on_requested_pool() {
        let n = with_threads(2, rayon::current_num_threads);
        assert_eq!(n, 2);
    }
}
