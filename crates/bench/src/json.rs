//! Minimal JSON emission for machine-readable benchmark reports.
//!
//! The experiment binaries accept `--json` and write `BENCH_<id>.json`
//! files (Gflop/s, % of peak) so CI can track kernel performance without
//! scraping the human-oriented tables. Hand-rolled because the workspace is
//! offline; escaping follows RFC 8259.

use std::fmt::Write as _;
use std::path::Path;

/// A JSON value, built by the experiments and rendered with [`Json::render`].
#[derive(Debug, Clone)]
pub enum Json {
    /// `null` (also used for non-finite numbers, which JSON cannot carry).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept separate from `Num` so counts render without `.0`).
    Int(i64),
    /// A finite double.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn s(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Renders to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) if x.is_finite() => {
                let _ = write!(out, "{x}");
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(k, out);
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Writes `value` to `path` (with a trailing newline) and prints where the
/// report went.
pub fn write_report(path: impl AsRef<Path>, value: &Json) {
    let path = path.as_ref();
    let text = value.render() + "\n";
    match std::fs::write(path, text) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => eprintln!("  FAILED to write {}: {e}", path.display()),
    }
}

/// Returns true when the process arguments request JSON emission
/// (`--json` anywhere on the command line).
pub fn json_flag() -> bool {
    std::env::args().skip(1).any(|a| a == "--json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values_compactly() {
        let v = Json::obj(vec![
            ("name", Json::s("e01")),
            ("passed", Json::Bool(true)),
            ("threads", Json::Int(4)),
            ("gflops", Json::Num(12.5)),
            ("rows", Json::Arr(vec![Json::Null, Json::Int(-3)])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"e01","passed":true,"threads":4,"gflops":12.5,"rows":[null,-3]}"#
        );
    }

    #[test]
    fn escapes_hostile_strings() {
        let v = Json::s("a\"b\\c\nd\te\u{1}f");
        assert_eq!(v.render(), r#""a\"b\\c\nd\te\u0001f""#);
        assert!(!v.render().chars().any(|c| (c as u32) < 0x20));
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
        assert_eq!(Json::Num(0.0).render(), "0");
    }
}
