//! Console table formatting for experiment output.

/// A simple aligned text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table with a title banner.
    pub fn render(&self, title: &str) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {title} ==\n"));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("  ");
            for (c, w) in cells.iter().zip(widths.iter()) {
                line.push_str(&format!("{c:>w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len() + 2;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self, title: &str) {
        print!("{}", self.render(title));
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 significant-ish decimals in scientific notation.
pub fn sci(x: f64) -> String {
    format!("{x:.2e}")
}

/// Formats a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats seconds adaptively (s / ms / µs).
pub fn secs(x: f64) -> String {
    if x >= 1.0 {
        format!("{x:.2}s")
    } else if x >= 1e-3 {
        format!("{:.2}ms", x * 1e3)
    } else {
        format!("{:.1}us", x * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render("demo");
        assert!(s.contains("== demo =="));
        assert!(s.contains("longer"));
        // Both data rows share the same width for column 0.
        let lines: Vec<&str> = s
            .lines()
            .filter(|l| l.contains('1') || l.contains("22"))
            .collect();
        assert_eq!(lines.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(0.123), "12.3%");
        assert_eq!(secs(2.5), "2.50s");
        assert_eq!(secs(0.0025), "2.50ms");
        assert_eq!(secs(2.5e-6), "2.5us");
        assert!(sci(12345.0).contains('e'));
    }
}
