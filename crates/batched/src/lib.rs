//! # xsc-batched — batched small-matrix BLAS
//!
//! The keynote's "many small problems" workload: applications (FEM element
//! matrices, block preconditioners, tensor contractions) need *millions* of
//! 4×4…32×32 BLAS calls. Calling a general kernel per matrix drowns in
//! call/dispatch overhead and strided allocation; a **batched** interface
//! stores the whole batch contiguously and makes one parallel pass.
//!
//! [`Batch`] is the flat container; [`batched_gemm`], [`batched_potrf`],
//! [`batched_trsm_llt`] the operations; [`looped_gemm`] the
//! one-call-per-matrix baseline experiment E07 compares against.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use rayon::prelude::*;
use xsc_core::{gemm, Error, Matrix, Result, Scalar, Transpose};

/// A batch of `count` matrices, each `rows × cols`, stored contiguously in
/// column-major order, one after another.
#[derive(Clone)]
pub struct Batch<T> {
    rows: usize,
    cols: usize,
    count: usize,
    data: Vec<T>,
}

impl<T: Scalar> Batch<T> {
    /// Creates a zero-filled batch. Degenerate shapes (zero rows, columns,
    /// or count) are allowed; every batched operation treats them as empty
    /// work rather than panicking.
    pub fn zeros(rows: usize, cols: usize, count: usize) -> Self {
        Batch {
            rows,
            cols,
            count,
            data: vec![T::zero(); rows * cols * count],
        }
    }

    /// Creates a batch whose `k`-th matrix has entries `f(k, i, j)`.
    pub fn from_fn(
        rows: usize,
        cols: usize,
        count: usize,
        mut f: impl FnMut(usize, usize, usize) -> T,
    ) -> Self {
        let mut b = Batch::zeros(rows, cols, count);
        for k in 0..count {
            let m = b.matrix_mut(k);
            for j in 0..cols {
                for i in 0..rows {
                    m[i + j * rows] = f(k, i, j);
                }
            }
        }
        b
    }

    /// Rows of each matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of each matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of matrices in the batch.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Column-major slice of matrix `k`.
    pub fn matrix(&self, k: usize) -> &[T] {
        let s = self.rows * self.cols;
        &self.data[k * s..(k + 1) * s]
    }

    /// Mutable column-major slice of matrix `k`.
    pub fn matrix_mut(&mut self, k: usize) -> &mut [T] {
        let s = self.rows * self.cols;
        &mut self.data[k * s..(k + 1) * s]
    }

    /// Copies matrix `k` out as a [`Matrix`] (interop/testing helper).
    pub fn to_matrix(&self, k: usize) -> Matrix<T> {
        Matrix::from_col_major(self.rows, self.cols, self.matrix(k).to_vec())
    }

    /// Builds a batch from a slice of equally-sized matrices.
    pub fn from_matrices(ms: &[Matrix<T>]) -> Self {
        assert!(!ms.is_empty(), "empty batch");
        let rows = ms[0].rows();
        let cols = ms[0].cols();
        let mut b = Batch::zeros(rows, cols, ms.len());
        for (k, m) in ms.iter().enumerate() {
            assert_eq!((m.rows(), m.cols()), (rows, cols), "ragged batch");
            b.matrix_mut(k).copy_from_slice(m.as_slice());
        }
        b
    }

    fn stride(&self) -> usize {
        self.rows * self.cols
    }
}

/// Batched `C[k] <- alpha * A[k] * B[k] + beta * C[k]`, one rayon pass over
/// the flat storage.
pub fn batched_gemm<T: Scalar>(alpha: T, a: &Batch<T>, b: &Batch<T>, beta: T, c: &mut Batch<T>) {
    assert_eq!(a.count, b.count, "batch counts differ");
    assert_eq!(a.count, c.count, "batch counts differ");
    assert_eq!(a.cols, b.rows, "inner dimensions differ");
    assert_eq!((c.rows, c.cols), (a.rows, b.cols), "output shape mismatch");
    let (m, k, n) = (a.rows, a.cols, b.cols);
    let sa = a.stride();
    let sb = b.stride();
    let sc = c.stride();
    if sc == 0 {
        // m == 0 or n == 0: every C[k] is empty; par_chunks_mut(0) would panic.
        // (k == 0 with m, n > 0 falls through and acts as a pure beta-scale.)
        return;
    }
    c.data.par_chunks_mut(sc).enumerate().for_each(|(idx, cm)| {
        let am = &a.data[idx * sa..(idx + 1) * sa];
        let bm = &b.data[idx * sb..(idx + 1) * sb];
        // Tiny column-sweep gemm on raw slices (no per-call allocation).
        for j in 0..n {
            let cj = &mut cm[j * m..(j + 1) * m];
            if beta == T::zero() {
                cj.fill(T::zero());
            } else if beta != T::one() {
                for x in cj.iter_mut() {
                    *x *= beta;
                }
            }
            for l in 0..k {
                let s = alpha * bm[l + j * k];
                if s == T::zero() {
                    continue;
                }
                let al = &am[l * m..(l + 1) * m];
                for i in 0..m {
                    cj[i] = s.mul_add(al[i], cj[i]);
                }
            }
        }
    });
}

/// Per-matrix baseline: allocates `Matrix` wrappers and calls the general
/// [`xsc_core::gemm::gemm`] once per batch element, sequentially — the
/// pattern batched BLAS exists to replace.
pub fn looped_gemm<T: Scalar>(alpha: T, a: &Batch<T>, b: &Batch<T>, beta: T, c: &mut Batch<T>) {
    for k in 0..a.count {
        let am = a.to_matrix(k);
        let bm = b.to_matrix(k);
        let mut cm = c.to_matrix(k);
        gemm::gemm(Transpose::No, Transpose::No, alpha, &am, &bm, beta, &mut cm);
        c.matrix_mut(k).copy_from_slice(cm.as_slice());
    }
}

/// Batched Cholesky: factors every (square, SPD) matrix in place. Returns
/// the index of the first failing matrix on error.
pub fn batched_potrf<T: Scalar>(batch: &mut Batch<T>) -> Result<()> {
    assert_eq!(batch.rows, batch.cols, "potrf needs square matrices");
    let n = batch.rows;
    let s = batch.stride();
    if s == 0 {
        return Ok(()); // 0x0 matrices: vacuously factored
    }
    let results: Vec<Result<()>> = batch
        .data
        .par_chunks_mut(s)
        .map(|mslice| {
            // In-place unblocked Cholesky on the raw slice.
            for j in 0..n {
                let d = mslice[j + j * n];
                if d.to_f64() <= 0.0 || d.not_finite() {
                    return Err(Error::NotPositiveDefinite { pivot: j });
                }
                let l = d.sqrt();
                mslice[j + j * n] = l;
                let inv = T::one() / l;
                for i in j + 1..n {
                    mslice[i + j * n] *= inv;
                }
                for c in j + 1..n {
                    let sjc = mslice[c + j * n];
                    if sjc == T::zero() {
                        continue;
                    }
                    for i in c..n {
                        let v = mslice[i + j * n];
                        mslice[i + c * n] = (-sjc).mul_add(v, mslice[i + c * n]);
                    }
                }
            }
            Ok(())
        })
        .collect();
    for (k, r) in results.into_iter().enumerate() {
        if let Err(e) = r {
            return Err(match e {
                Error::NotPositiveDefinite { pivot } => Error::InvalidArgument {
                    context: format!("batch element {k} not SPD at pivot {pivot}"),
                },
                other => other,
            });
        }
    }
    Ok(())
}

/// Batched forward+backward solve `A[k] x[k] = b[k]` from [`batched_potrf`]
/// factors; `rhs` is a batch of `n × 1` vectors, overwritten with solutions.
pub fn batched_trsm_llt<T: Scalar>(factors: &Batch<T>, rhs: &mut Batch<T>) {
    assert_eq!(factors.rows, factors.cols, "factors must be square");
    assert_eq!(rhs.rows, factors.rows, "rhs row mismatch");
    assert_eq!(rhs.count, factors.count, "batch counts differ");
    let n = factors.rows;
    let sf = factors.stride();
    let sr = rhs.stride();
    if sr == 0 {
        return; // n == 0 or zero right-hand sides: nothing to solve
    }
    let nrhs = rhs.cols;
    let fdata = &factors.data;
    rhs.data.par_chunks_mut(sr).enumerate().for_each(|(k, x)| {
        let l = &fdata[k * sf..(k + 1) * sf];
        for col in 0..nrhs {
            let xj = &mut x[col * n..(col + 1) * n];
            // Forward: L y = b.
            for j in 0..n {
                xj[j] /= l[j + j * n];
                let yj = xj[j];
                for i in j + 1..n {
                    xj[i] = (-yj).mul_add(l[i + j * n], xj[i]);
                }
            }
            // Backward: L^T x = y.
            for j in (0..n).rev() {
                let mut acc = xj[j];
                for i in j + 1..n {
                    acc = (-l[i + j * n]).mul_add(xj[i], acc);
                }
                xj[j] = acc / l[j + j * n];
            }
        }
    });
}

/// Factor-and-solve in one launch: Cholesky-factors every SPD matrix of
/// `a` in place ([`batched_potrf`]) and then solves `A[k] x[k] = b[k]`
/// for every element ([`batched_trsm_llt`]), overwriting `rhs` with the
/// solutions.
///
/// This is the coalesced entry point of the serving layer (`xsc-serve`,
/// experiment E21): `k` independent tiny solves submitted separately pay
/// `k` launch overheads, while a coalesced batch pays one. Each batch
/// element is processed by exactly the same sequential per-element
/// arithmetic regardless of `count`, so a solve executed inside a
/// `count == k` batch is **bit-identical** to the same solve executed
/// alone in a `count == 1` batch — the property the serving layer's
/// coalescer relies on (and the test suite asserts).
pub fn batched_cholesky_solve<T: Scalar>(a: &mut Batch<T>, rhs: &mut Batch<T>) -> Result<()> {
    batched_potrf(a)?;
    batched_trsm_llt(a, rhs);
    Ok(())
}

/// Batched LU with partial pivoting: factors every (square) matrix in
/// place, returning one pivot vector per batch element.
pub fn batched_getrf<T: Scalar>(batch: &mut Batch<T>) -> Result<Vec<Vec<usize>>> {
    assert_eq!(batch.rows, batch.cols, "getrf needs square matrices");
    let n = batch.rows;
    let s = batch.stride();
    if s == 0 {
        return Ok(vec![Vec::new(); batch.count]); // 0x0: empty pivot vectors
    }
    let results: Vec<Result<Vec<usize>>> = batch
        .data
        .par_chunks_mut(s)
        .map(|mslice| {
            let mut piv = vec![0usize; n];
            for j in 0..n {
                // Pivot search in column j.
                let mut p = j;
                let mut pmax = mslice[j + j * n].abs();
                for i in j + 1..n {
                    let v = mslice[i + j * n].abs();
                    if v > pmax {
                        pmax = v;
                        p = i;
                    }
                }
                piv[j] = p;
                if pmax.to_f64() == 0.0 {
                    return Err(Error::Singular { pivot: j });
                }
                if p != j {
                    for c in 0..n {
                        mslice.swap(j + c * n, p + c * n);
                    }
                }
                let inv = T::one() / mslice[j + j * n];
                for i in j + 1..n {
                    mslice[i + j * n] *= inv;
                }
                for c in j + 1..n {
                    let sjc = mslice[j + c * n];
                    if sjc == T::zero() {
                        continue;
                    }
                    for i in j + 1..n {
                        let l = mslice[i + j * n];
                        mslice[i + c * n] = (-sjc).mul_add(l, mslice[i + c * n]);
                    }
                }
            }
            Ok(piv)
        })
        .collect();
    let mut pivots = Vec::with_capacity(batch.count);
    for (k, r) in results.into_iter().enumerate() {
        match r {
            Ok(p) => pivots.push(p),
            Err(Error::Singular { pivot }) => {
                return Err(Error::InvalidArgument {
                    context: format!("batch element {k} singular at pivot {pivot}"),
                })
            }
            Err(other) => return Err(other),
        }
    }
    Ok(pivots)
}

/// Batched LU solve from [`batched_getrf`] factors: `rhs` holds one `n × k`
/// right-hand-side block per element, overwritten with solutions.
pub fn batched_getrf_solve<T: Scalar>(
    factors: &Batch<T>,
    pivots: &[Vec<usize>],
    rhs: &mut Batch<T>,
) {
    assert_eq!(factors.rows, factors.cols, "factors must be square");
    assert_eq!(rhs.rows, factors.rows, "rhs row mismatch");
    assert_eq!(rhs.count, factors.count, "batch counts differ");
    assert_eq!(pivots.len(), factors.count, "pivot count mismatch");
    let n = factors.rows;
    let sf = factors.stride();
    let sr = rhs.stride();
    if sr == 0 {
        return; // n == 0 or zero right-hand sides: nothing to solve
    }
    let nrhs = rhs.cols;
    let fdata = &factors.data;
    rhs.data.par_chunks_mut(sr).enumerate().for_each(|(k, x)| {
        let lu = &fdata[k * sf..(k + 1) * sf];
        let piv = &pivots[k];
        for col in 0..nrhs {
            let xj = &mut x[col * n..(col + 1) * n];
            for (j, &p) in piv.iter().enumerate() {
                if p != j {
                    xj.swap(j, p);
                }
            }
            // Unit-lower forward, then upper backward.
            for j in 0..n {
                let v = xj[j];
                if v == T::zero() {
                    continue;
                }
                for i in j + 1..n {
                    xj[i] = (-v).mul_add(lu[i + j * n], xj[i]);
                }
            }
            for j in (0..n).rev() {
                xj[j] /= lu[j + j * n];
                let v = xj[j];
                if v == T::zero() {
                    continue;
                }
                for i in 0..j {
                    xj[i] = (-v).mul_add(lu[i + j * n], xj[i]);
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsc_core::{factor, gen};

    fn random_batch(rows: usize, cols: usize, count: usize, seed: u64) -> Batch<f64> {
        let ms: Vec<Matrix<f64>> = (0..count)
            .map(|k| gen::random_matrix(rows, cols, seed + k as u64))
            .collect();
        Batch::from_matrices(&ms)
    }

    #[test]
    fn batch_layout_round_trips() {
        let b = Batch::<f64>::from_fn(3, 2, 4, |k, i, j| (100 * k + 10 * i + j) as f64);
        assert_eq!(b.count(), 4);
        let m2 = b.to_matrix(2);
        assert_eq!(m2.get(1, 1), 211.0);
        assert_eq!(b.matrix(0)[0], 0.0);
    }

    #[test]
    fn batched_gemm_matches_looped() {
        let a = random_batch(5, 4, 33, 1);
        let b = random_batch(4, 6, 33, 100);
        let c0 = random_batch(5, 6, 33, 200);
        let mut c1 = c0.clone();
        let mut c2 = c0.clone();
        batched_gemm(1.5, &a, &b, -0.5, &mut c1);
        looped_gemm(1.5, &a, &b, -0.5, &mut c2);
        for k in 0..33 {
            assert!(
                c1.to_matrix(k).approx_eq(&c2.to_matrix(k), 1e-12),
                "batch element {k} differs"
            );
        }
    }

    #[test]
    fn batched_gemm_beta_zero_overwrites() {
        let a = Batch::<f64>::from_fn(2, 2, 3, |_, i, j| if i == j { 1.0 } else { 0.0 });
        let b = a.clone();
        let mut c = Batch::<f64>::from_fn(2, 2, 3, |_, _, _| f64::NAN);
        batched_gemm(1.0, &a, &b, 0.0, &mut c);
        for k in 0..3 {
            assert!(c.to_matrix(k).approx_eq(&Matrix::identity(2), 0.0));
        }
    }

    #[test]
    fn batched_potrf_matches_reference() {
        let count = 17;
        let n = 8;
        let ms: Vec<Matrix<f64>> = (0..count).map(|k| gen::random_spd(n, k as u64)).collect();
        let mut batch = Batch::from_matrices(&ms);
        batched_potrf(&mut batch).unwrap();
        for (k, m) in ms.iter().enumerate() {
            let mut f = m.clone();
            factor::potrf_unblocked(&mut f).unwrap();
            let got = batch.to_matrix(k);
            for j in 0..n {
                for i in j..n {
                    assert!(
                        (got.get(i, j) - f.get(i, j)).abs() < 1e-11,
                        "element {k} at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_potrf_reports_failing_element() {
        let n = 4;
        let ms: Vec<Matrix<f64>> = (0..5)
            .map(|k| {
                let mut m = gen::random_spd::<f64>(n, 50 + k as u64);
                if k == 3 {
                    m.set(1, 1, -5.0);
                }
                m
            })
            .collect();
        let mut batch = Batch::from_matrices(&ms);
        let err = batched_potrf(&mut batch).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("element 3"), "{msg}");
    }

    #[test]
    fn batched_solve_recovers_solutions() {
        let count = 9;
        let n = 6;
        let ms: Vec<Matrix<f64>> = (0..count)
            .map(|k| gen::random_spd(n, 70 + k as u64))
            .collect();
        let mut factors = Batch::from_matrices(&ms);
        batched_potrf(&mut factors).unwrap();
        // b[k] = A[k] * ones.
        let mut rhs = Batch::<f64>::zeros(n, 1, count);
        for (k, m) in ms.iter().enumerate() {
            let b = gen::rhs_for_unit_solution(m);
            rhs.matrix_mut(k).copy_from_slice(&b);
        }
        batched_trsm_llt(&factors, &mut rhs);
        for k in 0..count {
            for &xi in rhs.matrix(k) {
                assert!((xi - 1.0).abs() < 1e-9, "element {k}: {xi}");
            }
        }
    }

    #[test]
    fn multi_rhs_solve() {
        let n = 5;
        let m = gen::random_spd::<f64>(n, 90);
        let mut factors = Batch::from_matrices(std::slice::from_ref(&m));
        batched_potrf(&mut factors).unwrap();
        // Two right-hand sides: A*1 and A*2.
        let b1 = gen::rhs_for_unit_solution(&m);
        let mut rhs = Batch::<f64>::zeros(n, 2, 1);
        for (i, &bi) in b1.iter().enumerate() {
            rhs.matrix_mut(0)[i] = bi;
            rhs.matrix_mut(0)[n + i] = 2.0 * bi;
        }
        batched_trsm_llt(&factors, &mut rhs);
        for i in 0..n {
            assert!((rhs.matrix(0)[i] - 1.0).abs() < 1e-9);
            assert!((rhs.matrix(0)[n + i] - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn batched_getrf_matches_reference() {
        let count = 11;
        let n = 7;
        let ms: Vec<Matrix<f64>> = (0..count)
            .map(|k| gen::random_matrix(n, n, 30 + k as u64))
            .collect();
        let mut batch = Batch::from_matrices(&ms);
        let pivots = batched_getrf(&mut batch).unwrap();
        for (k, m) in ms.iter().enumerate() {
            let mut f = m.clone();
            let piv = factor::getrf_unblocked(&mut f).unwrap();
            assert_eq!(pivots[k], piv, "element {k} pivots differ");
            assert!(
                batch.to_matrix(k).approx_eq(&f, 1e-12),
                "element {k} factors differ"
            );
        }
    }

    #[test]
    fn batched_getrf_solve_end_to_end() {
        let count = 6;
        let n = 9;
        let ms: Vec<Matrix<f64>> = (0..count)
            .map(|k| gen::random_matrix(n, n, 40 + k as u64))
            .collect();
        let mut factors = Batch::from_matrices(&ms);
        let pivots = batched_getrf(&mut factors).unwrap();
        let mut rhs = Batch::<f64>::zeros(n, 1, count);
        for (k, m) in ms.iter().enumerate() {
            rhs.matrix_mut(k)
                .copy_from_slice(&gen::rhs_for_unit_solution(m));
        }
        batched_getrf_solve(&factors, &pivots, &mut rhs);
        for k in 0..count {
            for &xi in rhs.matrix(k) {
                assert!((xi - 1.0).abs() < 1e-9, "element {k}: {xi}");
            }
        }
    }

    #[test]
    fn batched_getrf_reports_singular_element() {
        let n = 4;
        let ms: Vec<Matrix<f64>> = (0..3)
            .map(|k| {
                if k == 1 {
                    Matrix::zeros(n, n)
                } else {
                    gen::random_matrix(n, n, 60 + k as u64)
                }
            })
            .collect();
        let mut batch = Batch::from_matrices(&ms);
        let err = batched_getrf(&mut batch).unwrap_err();
        assert!(err.to_string().contains("element 1"), "{err}");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_batches_rejected() {
        let _ = Batch::from_matrices(&[Matrix::<f64>::zeros(2, 2), Matrix::<f64>::zeros(3, 3)]);
    }

    #[test]
    #[should_panic(expected = "counts differ")]
    fn mismatched_counts_rejected() {
        let a = Batch::<f64>::zeros(2, 2, 3);
        let b = Batch::<f64>::zeros(2, 2, 4);
        let mut c = Batch::<f64>::zeros(2, 2, 3);
        batched_gemm(1.0, &a, &b, 1.0, &mut c);
    }

    #[test]
    fn degenerate_batches_do_not_panic() {
        // m == 0 / n == 0: output stride is zero, so the ops are no-ops.
        let a = Batch::<f64>::zeros(0, 3, 4);
        let b = Batch::<f64>::zeros(3, 5, 4);
        let mut c = Batch::<f64>::zeros(0, 5, 4);
        batched_gemm(1.0, &a, &b, 0.0, &mut c);

        let a = Batch::<f64>::zeros(2, 3, 4);
        let b = Batch::<f64>::zeros(3, 0, 4);
        let mut c = Batch::<f64>::zeros(2, 0, 4);
        batched_gemm(1.0, &a, &b, 0.0, &mut c);

        // 0x0 square batches through the factorizations and solves.
        let mut spd = Batch::<f64>::zeros(0, 0, 3);
        batched_potrf(&mut spd).unwrap();
        let mut rhs = Batch::<f64>::zeros(0, 1, 3);
        batched_trsm_llt(&spd, &mut rhs);

        let mut lu = Batch::<f64>::zeros(0, 0, 3);
        let pivots = batched_getrf(&mut lu).unwrap();
        assert_eq!(pivots, vec![Vec::<usize>::new(); 3]);
        let mut rhs = Batch::<f64>::zeros(0, 2, 3);
        batched_getrf_solve(&lu, &pivots, &mut rhs);

        // Zero right-hand sides with nonzero n.
        let m = gen::random_spd::<f64>(4, 7);
        let mut factors = Batch::from_matrices(std::slice::from_ref(&m));
        batched_potrf(&mut factors).unwrap();
        let mut rhs = Batch::<f64>::zeros(4, 0, 1);
        batched_trsm_llt(&factors, &mut rhs);
    }

    #[test]
    fn batched_gemm_k_zero_is_pure_beta_scale() {
        let a = Batch::<f64>::zeros(3, 0, 2);
        let b = Batch::<f64>::zeros(0, 4, 2);
        let mut c = Batch::<f64>::from_fn(3, 4, 2, |k, i, j| (k + i + j) as f64 + 1.0);
        let c0 = c.clone();
        batched_gemm(1.0, &a, &b, 2.0, &mut c);
        for k in 0..2 {
            for (got, orig) in c.matrix(k).iter().zip(c0.matrix(k)) {
                assert_eq!(*got, 2.0 * orig);
            }
        }
        // beta == 0 with k == 0 must overwrite even NaN.
        let mut c = Batch::<f64>::from_fn(3, 4, 2, |_, _, _| f64::NAN);
        batched_gemm(1.0, &a, &b, 0.0, &mut c);
        for k in 0..2 {
            assert!(c.matrix(k).iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn cholesky_solve_is_bit_identical_to_count_one_batches() {
        // The coalescing contract: solving inside a batch of k must equal
        // solving alone, bit for bit.
        let n = 8;
        let count = 5;
        let ms: Vec<Matrix<f64>> = (0..count)
            .map(|k| gen::random_spd(n, 900 + k as u64))
            .collect();
        let rhs: Vec<Matrix<f64>> = ms
            .iter()
            .map(|m| {
                let b = gen::rhs_for_unit_solution(m);
                Matrix::from_fn(n, 1, |i, _| b[i])
            })
            .collect();

        let mut coalesced_a = Batch::from_matrices(&ms);
        let mut coalesced_b = Batch::from_matrices(&rhs);
        batched_cholesky_solve(&mut coalesced_a, &mut coalesced_b).unwrap();

        for k in 0..count {
            let mut solo_a = Batch::from_matrices(&ms[k..k + 1]);
            let mut solo_b = Batch::from_matrices(&rhs[k..k + 1]);
            batched_cholesky_solve(&mut solo_a, &mut solo_b).unwrap();
            let batched_bits: Vec<u64> =
                coalesced_b.matrix(k).iter().map(|v| v.to_bits()).collect();
            let solo_bits: Vec<u64> = solo_b.matrix(0).iter().map(|v| v.to_bits()).collect();
            assert_eq!(batched_bits, solo_bits, "element {k} differs");
            // And the answer is actually the solve: x ≈ ones.
            assert!(coalesced_b
                .matrix(k)
                .iter()
                .all(|&x| (x - 1.0).abs() < 1e-8));
        }
    }

    #[test]
    fn cholesky_solve_propagates_non_spd_error() {
        let mut a = Batch::<f64>::from_fn(2, 2, 1, |_, i, j| if i == j { -1.0 } else { 0.0 });
        let mut b = Batch::<f64>::zeros(2, 1, 1);
        assert!(batched_cholesky_solve(&mut a, &mut b).is_err());
    }

    #[test]
    fn f32_batches_work() {
        let a = Batch::<f32>::from_fn(3, 3, 2, |k, i, j| (k + i + j) as f32);
        let b = a.clone();
        let mut c = Batch::<f32>::zeros(3, 3, 2);
        batched_gemm(1.0, &a, &b, 0.0, &mut c);
        assert!(c.matrix(1).iter().all(|v| v.is_finite()));
    }
}
