//! Software-emulated IEEE 754 binary16 ("half") precision.
//!
//! Stored as an `f32` whose value is always exactly representable in
//! binary16; every arithmetic result is immediately re-rounded to the
//! binary16 grid (round-to-nearest-even), so computations behave like fp16
//! hardware up to double rounding in a single operation — the standard
//! software-emulation substitution for machines without fp16 units.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use xsc_core::{Float, Scalar};

/// An emulated binary16 value (see module docs).
#[derive(Clone, Copy, Default, PartialEq, PartialOrd)]
pub struct Half(f32);

/// Rounds an `f32` to the nearest binary16 value, returned as `f32`.
///
/// Handles overflow (to ±∞), subnormals, and NaN; uses round-to-nearest,
/// ties-to-even, via the standard bit algorithm.
pub fn round_f32_to_f16(x: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(x))
}

/// Converts `f32` to binary16 bits (round-to-nearest-even).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let mut exp = ((bits >> 23) & 0xff) as i32;
    let mut frac = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN.
        let nan = if frac != 0 { 0x0200 } else { 0 };
        return sign | 0x7c00 | nan;
    }
    // Re-bias: f32 bias 127, f16 bias 15.
    exp -= 127 - 15;
    if exp >= 0x1f {
        // Overflow -> infinity.
        return sign | 0x7c00;
    }
    if exp <= 0 {
        // Subnormal or underflow to zero.
        if exp < -10 {
            return sign;
        }
        // Add the implicit bit, shift into subnormal position.
        frac |= 0x0080_0000;
        let shift = (14 - exp) as u32; // 14..24
        let sub = frac >> shift;
        let rem = frac & ((1u32 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let mut out = sub as u16;
        if rem > half || (rem == half && (out & 1) == 1) {
            out += 1;
        }
        return sign | out;
    }
    // Normal: round the 23-bit fraction to 10 bits.
    let mut out = ((exp as u16) << 10) | ((frac >> 13) as u16);
    let rem = frac & 0x1fff;
    if rem > 0x1000 || (rem == 0x1000 && (out & 1) == 1) {
        out = out.wrapping_add(1); // may carry into the exponent: correct.
    }
    sign | out
}

/// Converts binary16 bits to `f32` exactly.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let frac = (h & 0x03ff) as u32;
    let bits = if exp == 0x1f {
        // Inf / NaN.
        sign | 0x7f80_0000 | (frac << 13)
    } else if exp == 0 {
        if frac == 0 {
            sign
        } else {
            // Subnormal: value = frac * 2^-24. With the leading bit of
            // `frac` at position p, the unbiased exponent is p - 24, i.e.
            // an f32 exponent field of p + 103; the loop leaves
            // e = p - 11, so the field is e + 114.
            let mut e = -1i32;
            let mut f = frac;
            while f & 0x0400 == 0 {
                f <<= 1;
                e -= 1;
            }
            f &= 0x03ff;
            sign | (((e + 114) as u32) << 23) | (f << 13)
        }
    } else {
        sign | ((exp + 127 - 15) << 23) | (frac << 13)
    };
    f32::from_bits(bits)
}

impl Half {
    /// Constructs from `f32` with rounding to the binary16 grid.
    pub fn from_f32(x: f32) -> Self {
        Half(round_f32_to_f16(x))
    }

    /// The stored (exactly-binary16) value as `f32`.
    pub fn to_f32(self) -> f32 {
        self.0
    }

    /// Largest finite binary16 value (65504).
    pub const MAX: f32 = 65504.0;
}

impl fmt::Debug for Half {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Half({})", self.0)
    }
}

impl fmt::Display for Half {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

macro_rules! impl_bin_op {
    ($trait:ident, $method:ident, $op:tt, $assign_trait:ident, $assign_method:ident) => {
        impl $trait for Half {
            type Output = Half;
            #[inline]
            fn $method(self, rhs: Half) -> Half {
                Half(round_f32_to_f16(self.0 $op rhs.0))
            }
        }
        impl $assign_trait for Half {
            #[inline]
            fn $assign_method(&mut self, rhs: Half) {
                *self = *self $op rhs;
            }
        }
    };
}

impl_bin_op!(Add, add, +, AddAssign, add_assign);
impl_bin_op!(Sub, sub, -, SubAssign, sub_assign);
impl_bin_op!(Mul, mul, *, MulAssign, mul_assign);
impl_bin_op!(Div, div, /, DivAssign, div_assign);

impl Neg for Half {
    type Output = Half;
    #[inline]
    fn neg(self) -> Half {
        Half(-self.0)
    }
}

impl Sum for Half {
    fn sum<I: Iterator<Item = Half>>(iter: I) -> Half {
        iter.fold(Half(0.0), |a, b| a + b)
    }
}

impl Scalar for Half {
    #[inline]
    fn zero() -> Self {
        Half(0.0)
    }
    #[inline]
    fn one() -> Self {
        Half(1.0)
    }
    #[inline]
    fn abs(self) -> Self {
        Half(self.0.abs())
    }
    #[inline]
    fn sqrt(self) -> Self {
        Half(round_f32_to_f16(self.0.sqrt()))
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        // No fused operation in fp16 emulation: round after each step, as
        // a minimal fp16 FPU would.
        self * a + b
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self.0 as f64
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        Half(round_f32_to_f16(v as f32))
    }
    #[inline]
    fn not_finite(self) -> bool {
        !self.0.is_finite()
    }
}

impl Float for Half {
    fn epsilon() -> Self {
        Half(9.765_625e-4) // 2^-10
    }
    fn precision_name() -> &'static str {
        "fp16"
    }
    fn mantissa_bits() -> u32 {
        11
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_round_trip() {
        for v in [0.0f32, 1.0, -2.0, 1024.0, 0.5, -0.25] {
            assert_eq!(round_f32_to_f16(v), v);
        }
    }

    #[test]
    fn rounding_drops_low_mantissa_bits() {
        // 1 + 2^-11 is not representable in binary16 -> rounds to 1 (even).
        let x = 1.0f32 + 2.0f32.powi(-11);
        assert_eq!(round_f32_to_f16(x), 1.0);
        // 1 + 3*2^-11 is a tie between frac=1 (odd) and frac=2 (even):
        // ties-to-even rounds UP to 1 + 2^-9.
        let y = 1.0f32 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(round_f32_to_f16(y), 1.0 + 2.0f32.powi(-9));
        // A non-tie just below rounds down to 1 + 2^-10.
        let z = 1.0f32 + 2.9 * 2.0f32.powi(-11);
        assert_eq!(round_f32_to_f16(z), 1.0 + 2.0f32.powi(-10));
    }

    #[test]
    fn overflow_goes_to_infinity() {
        assert!(round_f32_to_f16(70000.0).is_infinite());
        assert!(round_f32_to_f16(-70000.0).is_infinite());
        assert_eq!(round_f32_to_f16(65504.0), 65504.0);
        // 65520 rounds up to infinity (beyond max + half ulp).
        assert!(round_f32_to_f16(65536.0).is_infinite());
    }

    #[test]
    fn subnormals_are_representable() {
        let smallest = 2.0f32.powi(-24);
        assert_eq!(round_f32_to_f16(smallest), smallest);
        assert_eq!(round_f32_to_f16(smallest / 4.0), 0.0);
        let sub = 3.0 * 2.0f32.powi(-24);
        assert_eq!(round_f32_to_f16(sub), sub);
    }

    #[test]
    fn nan_is_preserved() {
        assert!(round_f32_to_f16(f32::NAN).is_nan());
        assert!(Half::from_f32(f32::NAN).not_finite());
    }

    #[test]
    fn all_f16_bit_patterns_round_trip() {
        // Every finite binary16 value must convert to f32 and back exactly.
        for bits in 0..=0xffffu16 {
            let f = f16_bits_to_f32(bits);
            if f.is_nan() {
                assert_eq!(f32_to_f16_bits(f) & 0x7c00, 0x7c00);
                continue;
            }
            let back = f32_to_f16_bits(f);
            assert_eq!(back, bits, "bits {bits:#06x} -> {f} -> {back:#06x}");
        }
    }

    #[test]
    fn arithmetic_rounds_each_step() {
        let a = Half::from_f32(1.0);
        let eps = Half::from_f32(2.0f32.powi(-11)); // below half ulp of 1.0
        assert_eq!((a + eps).to_f32(), 1.0); // absorbed
        let big = Half::from_f32(4096.0);
        let one = Half::one();
        assert_eq!((big + one).to_f32(), 4096.0); // ulp(4096) = 4 in fp16
    }

    #[test]
    fn scalar_trait_surface_works() {
        let x = Half::from_f64(2.0);
        assert!((x.sqrt().to_f64() - std::f64::consts::SQRT_2).abs() < 1e-3);
        assert_eq!(Half::zero() + Half::one(), Half::one());
        assert_eq!((-Half::one()).abs(), Half::one());
        assert_eq!(
            Half::from_f64(2.0)
                .mul_add(Half::from_f64(3.0), Half::one())
                .to_f64(),
            7.0
        );
    }

    #[test]
    fn precision_ordering() {
        assert!(Half::epsilon().to_f64() > f32::EPSILON as f64);
        assert_eq!(Half::precision_name(), "fp16");
    }

    #[test]
    fn matrix_in_half_precision() {
        use xsc_core::{gen, Matrix};
        let a = gen::random_spd::<f64>(8, 1);
        let h: Matrix<Half> = a.convert();
        let back: Matrix<f64> = h.convert();
        // fp16 has ~3 decimal digits: conversion error bounded by ~1e-3
        // relative on O(1) entries.
        assert!(
            a.max_abs_diff(&back) < 5e-3,
            "diff {}",
            a.max_abs_diff(&back)
        );
    }
}
