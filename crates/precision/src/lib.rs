//! # xsc-precision — mixed-precision numerics
//!
//! The keynote's rule: low precision is disproportionately fast (and cheap
//! in energy), so factor in low precision and recover double accuracy with
//! **iterative refinement**. This crate implements:
//!
//! * [`half::Half`] — a software-emulated IEEE binary16, so the three-
//!   precision pipelines of the paper's program run without fp16 hardware
//!   (a documented substitution: the numerics are identical, the speed is
//!   not);
//! * [`ir`] — classic LU-based iterative refinement (`factor in u_low,
//!   refine in f64`), the keynote's ~2× speedup recipe;
//! * [`gmres_ir`] — GMRES-IR, the extension that tolerates much worse
//!   conditioning than classic refinement;
//! * [`adaptive`] — the condition-estimate-driven dispatcher that picks
//!   between classic IR, GMRES-IR, and a full-precision fallback.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)] // index-coupled updates across multiple slices are the clearest form for these kernels

pub mod adaptive;
pub mod gmres_ir;
pub mod half;
pub mod ir;

pub use adaptive::{adaptive_solve, AdaptiveReport, SolverChoice};
pub use half::Half;
pub use ir::{lu_ir_solve, IrReport};
