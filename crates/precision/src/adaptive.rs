//! The adaptive mixed-precision solver: estimate conditioning, then pick
//! the cheapest method expected to converge.
//!
//! This is the dispatcher production libraries wrap around refinement
//! (LAPACK's `dsgesv` falls back to full precision when IR stalls; the
//! keynote's program adds GMRES-IR as the middle tier):
//!
//! * `κ·u₃₂ < 0.1`          → classic fp32-LU iterative refinement;
//! * `κ·u₃₂² < 0.1`         → GMRES-IR with the fp32 factors;
//! * otherwise               → full f64 factorization.
//!
//! The condition estimate reuses the fp32 factorization (Hager's method is
//! `O(n²)`), so mis-prediction costs little.

use crate::gmres_ir::gmres_ir_solve;
use crate::ir::{full_f64_solve, lu_ir_solve};
use xsc_core::{cond, factor, Matrix, Result};

/// Which path the adaptive solver took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverChoice {
    /// Classic fp32 factorization + refinement.
    ClassicIr,
    /// GMRES-IR with fp32 factors as preconditioner.
    GmresIr,
    /// Full f64 direct solve.
    FullPrecision,
}

/// Report from [`adaptive_solve`].
#[derive(Debug, Clone)]
pub struct AdaptiveReport {
    /// The path taken.
    pub choice: SolverChoice,
    /// Condition estimate that drove the decision (from fp32 factors).
    pub cond_estimate: f64,
    /// Whether a cheaper path was attempted and abandoned first.
    pub fallbacks: usize,
}

/// Solves `A x = b` choosing the cheapest reliable precision strategy.
pub fn adaptive_solve(a: &Matrix<f64>, b: &[f64]) -> Result<(Vec<f64>, AdaptiveReport)> {
    let n = a.rows();
    assert!(a.is_square(), "adaptive_solve requires a square matrix");
    assert_eq!(b.len(), n, "rhs length mismatch");
    let u32_ = f64::from(f32::EPSILON);

    // Probe factorization in fp32; its failure alone routes to f64.
    let mut fallbacks = 0usize;
    let cond_estimate = {
        let a32: Matrix<f32> = a.convert();
        let mut lu = a32;
        match factor::getrf_blocked(&mut lu, 64.min(n.max(1))) {
            Ok(piv) => {
                let a_as_f32: Matrix<f32> = a.convert();
                cond::condest(&a_as_f32, &lu, &piv)
            }
            Err(_) => f64::INFINITY,
        }
    };

    if cond::ir_should_converge(cond_estimate, u32_) {
        match lu_ir_solve::<f32>(a, b, 30, None) {
            Ok((x, _)) => {
                return Ok((
                    x,
                    AdaptiveReport {
                        choice: SolverChoice::ClassicIr,
                        cond_estimate,
                        fallbacks,
                    },
                ))
            }
            Err(_) => fallbacks += 1, // estimate was optimistic; escalate
        }
    }
    if cond_estimate * u32_ * u32_ < 0.1 {
        match gmres_ir_solve::<f32>(a, b, 30, 30, None) {
            Ok((x, _)) => {
                return Ok((
                    x,
                    AdaptiveReport {
                        choice: SolverChoice::GmresIr,
                        cond_estimate,
                        fallbacks,
                    },
                ))
            }
            Err(_) => fallbacks += 1,
        }
    }
    let x = full_f64_solve(a, b)?;
    Ok((
        x,
        AdaptiveReport {
            choice: SolverChoice::FullPrecision,
            cond_estimate,
            fallbacks,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsc_core::{gen, norms};

    #[test]
    fn well_conditioned_takes_classic_ir() {
        let a = gen::diag_dominant::<f64>(64, 1);
        let b = gen::rhs_for_unit_solution(&a);
        let (x, rep) = adaptive_solve(&a, &b).unwrap();
        assert_eq!(
            rep.choice,
            SolverChoice::ClassicIr,
            "κ≈{}",
            rep.cond_estimate
        );
        assert!(norms::relative_residual(&a, &x, &b) < 1e-9);
        assert_eq!(rep.fallbacks, 0);
    }

    #[test]
    fn moderately_ill_conditioned_takes_gmres_ir() {
        // κ ~ 3e8 > 1/u32 (~1.2e7) but << 1/u32².
        let a = gen::ill_conditioned_spd::<f64>(64, 3e8, 2);
        let b = gen::rhs_for_unit_solution(&a);
        let (x, rep) = adaptive_solve(&a, &b).unwrap();
        assert!(
            matches!(
                rep.choice,
                SolverChoice::GmresIr | SolverChoice::FullPrecision
            ),
            "κ≈{:.2e} chose {:?}",
            rep.cond_estimate,
            rep.choice
        );
        assert!(norms::relative_residual(&a, &x, &b) < 1e-7);
    }

    #[test]
    fn extreme_conditioning_takes_full_precision() {
        let a = gen::ill_conditioned_spd::<f64>(48, 1e13, 3);
        let b = gen::rhs_for_unit_solution(&a);
        let (x, rep) = adaptive_solve(&a, &b).unwrap();
        assert_eq!(
            rep.choice,
            SolverChoice::FullPrecision,
            "κ≈{:.2e}",
            rep.cond_estimate
        );
        // At κ=1e13 even f64 loses digits; backward stability is the bar.
        assert!(norms::hpl_scaled_residual(&a, &x, &b) < 16.0);
    }

    #[test]
    fn estimate_is_in_the_right_decade() {
        let a = gen::ill_conditioned_spd::<f64>(48, 1e6, 4);
        let b = gen::rhs_for_unit_solution(&a);
        let (_, rep) = adaptive_solve(&a, &b).unwrap();
        assert!(
            rep.cond_estimate > 1e4 && rep.cond_estimate < 1e9,
            "estimate {:.2e}",
            rep.cond_estimate
        );
    }
}
