//! LU-based mixed-precision iterative refinement.
//!
//! The keynote's recipe (Langou et al. / the PLASMA `dsgesv` routine):
//! factor `A` once in a *low* precision (fp32 or fp16) — the `O(n³)` work —
//! then recover full `f64` accuracy with a few `O(n²)` refinement steps:
//!
//! ```text
//! factor: A ≈ L·U                  (low precision, 2n³/3 flops)
//! x₀ = U⁻¹L⁻¹ b                    (low precision)
//! repeat: r = b − A·x              (f64)
//!         d = U⁻¹L⁻¹ r             (low precision)
//!         x = x + d                (f64)
//! ```
//!
//! Converges when `κ(A) · u_low < 1`; the speedup comes from doing the cubic
//! work at the faster precision (~2× for fp32 on fp32-double-rate hardware).

use xsc_core::{factor, gemm, norms, Float, Matrix, Result, Transpose};

/// Convergence report from [`lu_ir_solve`].
#[derive(Debug, Clone)]
pub struct IrReport {
    /// Refinement iterations performed (0 = the low-precision solve was
    /// already accurate enough).
    pub iterations: usize,
    /// Whether the stopping criterion was met.
    pub converged: bool,
    /// `‖r‖∞ / (‖A‖∞ ‖x‖∞)` after each step (index 0 = initial solve).
    pub residual_history: Vec<f64>,
    /// Precision the factorization ran in (e.g. `"fp32"`).
    pub factor_precision: &'static str,
}

/// Default stopping criterion: backward error at the `f64` roundoff floor
/// (`‖r‖∞ / (‖A‖∞‖x‖∞) <= n·ε₆₄`), the criterion LAPACK's `dsgesv` uses.
pub fn default_tolerance(n: usize) -> f64 {
    xsc_core::cast::count_f64(n as u64).sqrt() * f64::EPSILON
}

/// Solves `A x = b` by LU factorization in precision `Lo` plus `f64`
/// refinement. Returns the solution and a convergence report.
///
/// Fails with [`xsc_core::Error::Singular`] if the low-precision
/// factorization breaks down, or [`xsc_core::Error::DidNotConverge`]
/// (carrying the last residual) if refinement stalls — the caller is then
/// expected to fall back to a full-precision solve, exactly as `dsgesv`
/// does.
pub fn lu_ir_solve<Lo: Float>(
    a: &Matrix<f64>,
    b: &[f64],
    max_iters: usize,
    tol: Option<f64>,
) -> Result<(Vec<f64>, IrReport)> {
    let n = a.rows();
    assert!(a.is_square(), "lu_ir_solve requires a square matrix");
    assert_eq!(b.len(), n, "rhs length mismatch");
    let tol = tol.unwrap_or_else(|| default_tolerance(n));

    // Low-precision factorization (the O(n³) work).
    let a_lo: Matrix<Lo> = a.convert();
    let mut lu = a_lo;
    let piv = factor::getrf_blocked(&mut lu, 64.min(n.max(1)))?;

    let solve_lo = |rhs_f64: &[f64]| -> Vec<f64> {
        let mut v: Vec<Lo> = rhs_f64.iter().map(|&x| Lo::from_f64(x)).collect();
        factor::getrf_solve(&lu, &piv, &mut v);
        v.into_iter().map(|x| x.to_f64()).collect()
    };

    // Initial solve.
    let mut x = solve_lo(b);
    let anorm = norms::inf_norm(a).max(f64::MIN_POSITIVE);

    let backward_error = |x: &[f64], r: &[f64]| -> f64 {
        let xnorm = norms::vec_inf_norm(x).max(f64::MIN_POSITIVE);
        norms::vec_inf_norm(r) / (anorm * xnorm)
    };

    let mut r = vec![0.0f64; n];
    let residual = |x: &[f64], r: &mut [f64]| {
        r.copy_from_slice(b);
        gemm::gemv(Transpose::No, -1.0, a, x, 1.0, r);
    };

    residual(&x, &mut r);
    let mut history = vec![backward_error(&x, &r)];
    let mut converged = history[0] <= tol;
    let mut iterations = 0;

    while !converged && iterations < max_iters {
        iterations += 1;
        let d = solve_lo(&r);
        for (xi, di) in x.iter_mut().zip(d.iter()) {
            *xi += di;
        }
        residual(&x, &mut r);
        let be = backward_error(&x, &r);
        // Stall detection: refinement must contract; if the error stops
        // improving before reaching tol, the conditioning is too bad for
        // this low precision.
        let stalled = history
            .last()
            .is_some_and(|&prev| be >= prev * 0.5 && be > tol);
        history.push(be);
        if be <= tol {
            converged = true;
        } else if stalled {
            break;
        }
    }

    let report = IrReport {
        iterations,
        converged,
        residual_history: history,
        factor_precision: Lo::precision_name(),
    };
    if converged {
        Ok((x, report))
    } else {
        Err(xsc_core::Error::DidNotConverge {
            iterations,
            residual: report.residual_history.last().copied().unwrap_or(f64::NAN),
        })
    }
}

/// Reference full-`f64` direct solve (factor + solve), for the speedup and
/// accuracy comparisons in experiment E03.
pub fn full_f64_solve(a: &Matrix<f64>, b: &[f64]) -> Result<Vec<f64>> {
    let mut lu = a.clone();
    let piv = factor::getrf_blocked(&mut lu, 64)?;
    let mut x = b.to_vec();
    factor::getrf_solve(&lu, &piv, &mut x);
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::half::Half;
    use xsc_core::gen;

    #[test]
    fn fp32_ir_reaches_f64_accuracy() {
        let n = 64;
        let a = gen::diag_dominant::<f64>(n, 1);
        let b = gen::rhs_for_unit_solution(&a);
        let (x, report) = lu_ir_solve::<f32>(&a, &b, 30, None).unwrap();
        assert!(report.converged);
        assert!(report.iterations >= 1, "fp32 alone can't hit f64 accuracy");
        assert!(report.iterations < 10, "well-conditioned: few iterations");
        assert!(norms::hpl_scaled_residual(&a, &x, &b) < 16.0);
        assert_eq!(report.factor_precision, "fp32");
        // Solution accurate to near machine precision.
        for xi in &x {
            assert!((xi - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn fp16_ir_converges_on_well_conditioned_systems() {
        let n = 32;
        let a = gen::diag_dominant::<f64>(n, 2);
        let b = gen::rhs_for_unit_solution(&a);
        let (x, report) = lu_ir_solve::<Half>(&a, &b, 60, None).unwrap();
        assert!(report.converged);
        assert!(
            report.iterations >= report.residual_history.len().saturating_sub(2),
            "history bookkeeping"
        );
        for xi in &x {
            assert!((xi - 1.0).abs() < 1e-9, "xi = {xi}");
        }
        assert_eq!(report.factor_precision, "fp16");
    }

    #[test]
    fn fp16_needs_more_iterations_than_fp32() {
        let n = 48;
        let a = gen::diag_dominant::<f64>(n, 3);
        let b = gen::rhs_for_unit_solution(&a);
        let (_, r32) = lu_ir_solve::<f32>(&a, &b, 60, None).unwrap();
        let (_, r16) = lu_ir_solve::<Half>(&a, &b, 60, None).unwrap();
        // On a strongly diag-dominant system both precisions can land on
        // the same small iteration count, so compare what is robustly
        // ordered: the initial low-precision solve's backward error
        // (u_fp16/u_fp32 ≈ 8000×) and the refinement effort (never less).
        assert!(
            r16.iterations >= r32.iterations,
            "fp16 ({}) should need at least as much refinement as fp32 ({})",
            r16.iterations,
            r32.iterations
        );
        assert!(
            r16.residual_history[0] > r32.residual_history[0] * 100.0,
            "fp16 initial solve ({:.3e}) should be far less accurate than fp32 ({:.3e})",
            r16.residual_history[0],
            r32.residual_history[0]
        );
    }

    #[test]
    fn ill_conditioning_defeats_low_precision() {
        // κ ~ 1e9 > 1/u_fp16: fp16-IR must fail; f64 direct still works.
        let n = 48;
        let a = gen::ill_conditioned_spd::<f64>(n, 1e9, 4);
        let b = gen::rhs_for_unit_solution(&a);
        let r16 = lu_ir_solve::<Half>(&a, &b, 40, None);
        assert!(r16.is_err(), "fp16 IR should fail at cond 1e9");
        let x = full_f64_solve(&a, &b).unwrap();
        assert!(norms::relative_residual(&a, &x, &b) < 1e-9);
    }

    #[test]
    fn residual_history_is_monotone_until_convergence() {
        let n = 40;
        let a = gen::diag_dominant::<f64>(n, 5);
        let b = gen::rhs_for_unit_solution(&a);
        let (_, report) = lu_ir_solve::<f32>(&a, &b, 30, None).unwrap();
        for w in report.residual_history.windows(2) {
            assert!(w[1] <= w[0] * 1.01, "history should contract: {w:?}");
        }
    }

    #[test]
    fn explicit_tolerance_is_respected() {
        let n = 32;
        let a = gen::diag_dominant::<f64>(n, 6);
        let b = gen::rhs_for_unit_solution(&a);
        // A loose tolerance should converge with no refinement at all.
        let (_, report) = lu_ir_solve::<f32>(&a, &b, 30, Some(1e-2)).unwrap();
        assert_eq!(report.iterations, 0);
    }

    #[test]
    fn ir_matches_full_f64_solution() {
        let n = 56;
        let a = gen::diag_dominant::<f64>(n, 7);
        let b = gen::random_vector::<f64>(n, 8);
        let (x_ir, _) = lu_ir_solve::<f32>(&a, &b, 30, None).unwrap();
        let x_f64 = full_f64_solve(&a, &b).unwrap();
        for (a_, b_) in x_ir.iter().zip(x_f64.iter()) {
            assert!((a_ - b_).abs() < 1e-9);
        }
    }
}
