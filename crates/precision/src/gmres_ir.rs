//! GMRES-based iterative refinement (GMRES-IR).
//!
//! Classic refinement fails once `κ(A) · u_low ≳ 1`. The extension in the
//! keynote's research program (Carson & Higham): use the low-precision LU
//! factors as a *preconditioner* inside GMRES run in `f64`. The
//! preconditioned operator `U⁻¹L⁻¹A` has condition number ~`1 + κ(A)·u_low`,
//! so GMRES-IR tolerates condition numbers up to ~`1/u_low²` where classic
//! IR stops at ~`1/u_low`.

use xsc_core::{factor, gemm, norms, Float, Matrix, Result, Transpose};

/// Report from a [`gmres_ir_solve`] run.
#[derive(Debug, Clone)]
pub struct GmresIrReport {
    /// Outer refinement steps.
    pub outer_iterations: usize,
    /// Total inner GMRES iterations.
    pub inner_iterations: usize,
    /// Whether the backward error reached the tolerance.
    pub converged: bool,
    /// Backward error after each outer step.
    pub residual_history: Vec<f64>,
}

/// Unpreconditioned GMRES(restart) on a dense system, with the operator
/// provided as a closure (`y <- op(x)`). Returns the approximate solution
/// of `op(x) = rhs` and the iterations used.
fn gmres<F: Fn(&[f64], &mut [f64])>(
    op: &F,
    rhs: &[f64],
    restart: usize,
    max_iters: usize,
    tol: f64,
) -> (Vec<f64>, usize) {
    let n = rhs.len();
    let mut x = vec![0.0f64; n];
    let mut total_iters = 0;
    let bnorm = xsc_core::blas1::nrm2(rhs).max(f64::MIN_POSITIVE);

    'outer: loop {
        // r = rhs - op(x).
        let mut r = vec![0.0f64; n];
        op(&x, &mut r);
        for (ri, &bi) in r.iter_mut().zip(rhs.iter()) {
            *ri = bi - *ri;
        }
        let beta = xsc_core::blas1::nrm2(&r);
        if beta / bnorm <= tol || total_iters >= max_iters {
            return (x, total_iters);
        }
        let m = restart.min(max_iters - total_iters);
        // Arnoldi with modified Gram-Schmidt.
        let mut v: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
        v.push(r.iter().map(|&ri| ri / beta).collect());
        let mut h = vec![vec![0.0f64; m]; m + 1]; // h[i][j]
        let mut cs = vec![0.0f64; m];
        let mut sn = vec![0.0f64; m];
        let mut g = vec![0.0f64; m + 1];
        g[0] = beta;
        let mut k_used = 0;

        for j in 0..m {
            total_iters += 1;
            let mut w = vec![0.0f64; n];
            op(&v[j], &mut w);
            for (i, vi) in v.iter().enumerate().take(j + 1) {
                let hij = xsc_core::blas1::dot_pairwise(&w, vi);
                h[i][j] = hij;
                xsc_core::blas1::axpy(-hij, vi, &mut w);
            }
            let hnext = xsc_core::blas1::nrm2(&w);
            h[j + 1][j] = hnext;
            // Apply the accumulated Givens rotations to column j.
            for i in 0..j {
                let tmp = cs[i] * h[i][j] + sn[i] * h[i + 1][j];
                h[i + 1][j] = -sn[i] * h[i][j] + cs[i] * h[i + 1][j];
                h[i][j] = tmp;
            }
            // New rotation to annihilate h[j+1][j].
            let denom = (h[j][j] * h[j][j] + hnext * hnext).sqrt();
            if denom == 0.0 {
                k_used = j + 1;
                break;
            }
            cs[j] = h[j][j] / denom;
            sn[j] = hnext / denom;
            h[j][j] = denom;
            g[j + 1] = -sn[j] * g[j];
            g[j] *= cs[j];
            k_used = j + 1;
            if g[j + 1].abs() / bnorm <= tol || hnext == 0.0 {
                break;
            }
            v.push(w.iter().map(|&wi| wi / hnext).collect());
        }

        // Back-substitute y from the triangularized H, update x.
        let mut y = vec![0.0f64; k_used];
        for i in (0..k_used).rev() {
            let mut acc = g[i];
            for (jj, &yj) in y.iter().enumerate().skip(i + 1) {
                acc -= h[i][jj] * yj;
            }
            y[i] = acc / h[i][i];
        }
        for (j, &yj) in y.iter().enumerate() {
            xsc_core::blas1::axpy(yj, &v[j], &mut x);
        }
        if total_iters >= max_iters {
            return (x, total_iters);
        }
        // Loop back for the restart; convergence re-checked at the top.
        continue 'outer;
    }
}

/// Solves `A x = b` with GMRES-IR: LU in precision `Lo` used as a left
/// preconditioner for `f64` GMRES, wrapped in outer refinement.
pub fn gmres_ir_solve<Lo: Float>(
    a: &Matrix<f64>,
    b: &[f64],
    max_outer: usize,
    inner_restart: usize,
    tol: Option<f64>,
) -> Result<(Vec<f64>, GmresIrReport)> {
    let n = a.rows();
    assert!(a.is_square(), "gmres_ir_solve requires a square matrix");
    assert_eq!(b.len(), n, "rhs length mismatch");
    let tol = tol.unwrap_or_else(|| crate::ir::default_tolerance(n));

    let a_lo: Matrix<Lo> = a.convert();
    let mut lu = a_lo;
    let piv = factor::getrf_blocked(&mut lu, 64.min(n.max(1)))?;

    // Preconditioned operator: y = U⁻¹L⁻¹ (A x), with the triangular solves
    // done in the low precision (as the factors are stored there).
    let precond_solve = |v: &mut Vec<f64>| {
        let mut lo: Vec<Lo> = v.iter().map(|&x| Lo::from_f64(x)).collect();
        factor::getrf_solve(&lu, &piv, &mut lo);
        for (o, l) in v.iter_mut().zip(lo.iter()) {
            *o = l.to_f64();
        }
    };
    let op = |x: &[f64], y: &mut [f64]| {
        gemm::gemv(Transpose::No, 1.0, a, x, 0.0, y);
        let mut t = y.to_vec();
        precond_solve(&mut t);
        y.copy_from_slice(&t);
    };

    let anorm = norms::inf_norm(a).max(f64::MIN_POSITIVE);
    let backward_error = |x: &[f64], r: &[f64]| {
        norms::vec_inf_norm(r) / (anorm * norms::vec_inf_norm(x).max(f64::MIN_POSITIVE))
    };

    let mut x = vec![0.0f64; n];
    let mut r = b.to_vec();
    let mut history = Vec::new();
    let mut inner_total = 0;
    let mut outer = 0;
    let mut converged = false;

    for _ in 0..max_outer {
        // Precondition the residual and solve the correction equation.
        let mut rhs = r.clone();
        precond_solve(&mut rhs);
        let (d, inner) = gmres(&op, &rhs, inner_restart, inner_restart * 4, 1e-8);
        inner_total += inner;
        outer += 1;
        for (xi, di) in x.iter_mut().zip(d.iter()) {
            *xi += di;
        }
        // True residual in f64.
        r.copy_from_slice(b);
        gemm::gemv(Transpose::No, -1.0, a, &x, 1.0, &mut r);
        let be = backward_error(&x, &r);
        history.push(be);
        if be <= tol {
            converged = true;
            break;
        }
    }

    let report = GmresIrReport {
        outer_iterations: outer,
        inner_iterations: inner_total,
        converged,
        residual_history: history,
    };
    if converged {
        Ok((x, report))
    } else {
        Err(xsc_core::Error::DidNotConverge {
            iterations: outer,
            residual: report.residual_history.last().copied().unwrap_or(f64::NAN),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsc_core::gen;

    #[test]
    fn gmres_ir_solves_well_conditioned_system() {
        let n = 48;
        let a = gen::diag_dominant::<f64>(n, 1);
        let b = gen::rhs_for_unit_solution(&a);
        let (x, report) = gmres_ir_solve::<f32>(&a, &b, 10, 20, None).unwrap();
        assert!(report.converged);
        for xi in &x {
            assert!((xi - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn gmres_ir_survives_conditioning_that_kills_classic_ir() {
        // κ ~ 3e8: beyond classic fp32-IR's ~1/u ≈ 1e7 limit, within
        // GMRES-IR's reach.
        let n = 64;
        let a = gen::ill_conditioned_spd::<f64>(n, 3e8, 2);
        let b = gen::rhs_for_unit_solution(&a);

        let classic = crate::ir::lu_ir_solve::<f32>(&a, &b, 40, None);
        let gmres_based = gmres_ir_solve::<f32>(&a, &b, 25, 30, None);
        assert!(
            gmres_based.is_ok(),
            "GMRES-IR should converge where classic IR struggles: {gmres_based:?}"
        );
        let (x, _) = gmres_based.unwrap();
        assert!(norms::relative_residual(&a, &x, &b) < 1e-7);
        // Classic IR either fails or needs far more outer iterations.
        if let Ok((_, rep)) = classic {
            let (_, grep) = gmres_ir_solve::<f32>(&a, &b, 25, 30, None).unwrap();
            assert!(grep.outer_iterations <= rep.iterations + 5);
        }
    }

    #[test]
    fn inner_gmres_solves_identity_instantly() {
        let op = |x: &[f64], y: &mut [f64]| y.copy_from_slice(x);
        let rhs = vec![1.0, 2.0, 3.0];
        let (x, iters) = gmres(&op, &rhs, 5, 20, 1e-12);
        assert!(iters <= 2);
        for (a, b) in x.iter().zip(rhs.iter()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn inner_gmres_handles_restarts() {
        // A system needing more Krylov dimensions than the restart length.
        let n = 30;
        let a = gen::diag_dominant::<f64>(n, 3);
        let b = gen::rhs_for_unit_solution(&a);
        let op = |x: &[f64], y: &mut [f64]| {
            gemm::gemv(Transpose::No, 1.0, &a, x, 0.0, y);
        };
        let (x, _) = gmres(&op, &b, 5, 200, 1e-10);
        assert!(norms::relative_residual(&a, &x, &b) < 1e-8);
    }
}
