//! # xsc-autotune — empirical parameter tuning
//!
//! The keynote lists autotuning as a pillar of the extreme-scale software
//! stack: kernel performance is a non-obvious, non-monotone function of
//! blocking parameters, so the right tile size is *searched for*, not
//! derived. This crate provides the search strategies the benchmark suite
//! uses to pick tile sizes (experiment E08):
//!
//! * [`exhaustive`] — measure every candidate (the ground truth);
//! * [`hill_climb`] — local search over an ordered parameter axis;
//! * [`successive_halving`] — multi-fidelity search: measure everything
//!   cheaply, keep the best half, re-measure with a bigger budget.
//!
//! Measurements are noisy, so [`median_of`] wraps a measurement closure
//! with median-of-`k` repetition.
//!
//! [`gemm_tune`] applies these strategies to the blocked GEMM's cache
//! parameters (`MC`/`KC`/`NC`), the search E08 runs alongside its tile-size
//! sweep.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod gemm_tune;

/// Outcome of a tuning run: the winning parameter and every sample taken.
#[derive(Debug, Clone)]
pub struct SweepResult<P> {
    /// Parameter with the lowest measured cost.
    pub best: P,
    /// Cost of the winner.
    pub best_cost: f64,
    /// Every `(parameter, cost)` sample, in measurement order.
    pub samples: Vec<(P, f64)>,
    /// Total number of measurements taken.
    pub evaluations: usize,
}

/// Measures every candidate and returns the argmin.
///
/// # Panics
/// Panics if `candidates` is empty or a measurement returns NaN.
pub fn exhaustive<P: Copy>(candidates: &[P], mut measure: impl FnMut(P) -> f64) -> SweepResult<P> {
    assert!(!candidates.is_empty(), "no candidates to tune over");
    let mut samples = Vec::with_capacity(candidates.len());
    for &p in candidates {
        let c = measure(p);
        assert!(!c.is_nan(), "measurement returned NaN");
        samples.push((p, c));
    }
    let (best, best_cost) = samples
        .iter()
        .copied()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .expect("nonempty");
    SweepResult {
        best,
        best_cost,
        evaluations: samples.len(),
        samples,
    }
}

/// Hill climbing over an *ordered* candidate axis (e.g. tile sizes sorted
/// ascending): starts in the middle, moves to the better neighbor until a
/// local minimum, restarting from the best unexplored point until
/// `max_evals` is exhausted. Finds the global optimum on unimodal
/// responses with a fraction of the measurements.
pub fn hill_climb<P: Copy + PartialEq>(
    candidates: &[P],
    max_evals: usize,
    mut measure: impl FnMut(P) -> f64,
) -> SweepResult<P> {
    assert!(!candidates.is_empty(), "no candidates to tune over");
    let n = candidates.len();
    let mut cost_cache: Vec<Option<f64>> = vec![None; n];
    let mut samples = Vec::new();
    let mut evals = 0usize;

    let mut eval = |i: usize,
                    cache: &mut Vec<Option<f64>>,
                    samples: &mut Vec<(P, f64)>,
                    evals: &mut usize|
     -> f64 {
        if let Some(c) = cache[i] {
            return c;
        }
        let c = measure(candidates[i]);
        assert!(!c.is_nan(), "measurement returned NaN");
        cache[i] = Some(c);
        samples.push((candidates[i], c));
        *evals += 1;
        c
    };

    let mut pos = n / 2;
    let mut cur = eval(pos, &mut cost_cache, &mut samples, &mut evals);
    while evals < max_evals {
        let mut moved = false;
        // Look at both neighbors; move to the best strictly-better one.
        let mut best_next = None;
        for next in [pos.checked_sub(1), (pos + 1 < n).then_some(pos + 1)]
            .into_iter()
            .flatten()
        {
            if evals >= max_evals && cost_cache[next].is_none() {
                continue;
            }
            let c = eval(next, &mut cost_cache, &mut samples, &mut evals);
            if c < cur && best_next.is_none_or(|(_, bc)| c < bc) {
                best_next = Some((next, c));
            }
        }
        if let Some((next, c)) = best_next {
            pos = next;
            cur = c;
            moved = true;
        }
        if !moved {
            break;
        }
    }

    let (best, best_cost) = samples
        .iter()
        .copied()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .expect("nonempty");
    SweepResult {
        best,
        best_cost,
        evaluations: evals,
        samples,
    }
}

/// Successive halving: measure all candidates at the cheapest budget level,
/// keep the best half, repeat with `budget * 2`, until one survives.
/// `measure(p, budget)` should get less noisy as `budget` grows (e.g.
/// budget = repetitions).
pub fn successive_halving<P: Copy + PartialEq>(
    candidates: &[P],
    initial_budget: usize,
    mut measure: impl FnMut(P, usize) -> f64,
) -> SweepResult<P> {
    assert!(!candidates.is_empty(), "no candidates to tune over");
    let mut alive: Vec<P> = candidates.to_vec();
    let mut budget = initial_budget.max(1);
    let mut samples = Vec::new();
    let mut evals = 0usize;
    while alive.len() > 1 {
        let mut scored: Vec<(P, f64)> = alive
            .iter()
            .map(|&p| {
                let c = measure(p, budget);
                assert!(!c.is_nan(), "measurement returned NaN");
                evals += 1;
                samples.push((p, c));
                (p, c)
            })
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        scored.truncate(scored.len().div_ceil(2));
        alive = scored.into_iter().map(|(p, _)| p).collect();
        budget *= 2;
    }
    let best = alive[0];
    let best_cost = samples
        .iter()
        .rev()
        .find(|(p, _)| *p == best)
        .map(|&(_, c)| c)
        .unwrap_or(f64::INFINITY);
    SweepResult {
        best,
        best_cost,
        evaluations: evals,
        samples,
    }
}

/// Median-of-`k` measurement wrapper (robust against scheduling noise).
pub fn median_of(k: usize, mut f: impl FnMut() -> f64) -> f64 {
    assert!(k >= 1);
    let mut v: Vec<f64> = (0..k).map(|_| f()).collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic non-monotone "tile size" response: parabola with the
    /// minimum at 128, like a real blocking sweep.
    fn response(nb: usize) -> f64 {
        let x = nb as f64;
        (x - 128.0).powi(2) / 1000.0 + 1.0
    }

    const CANDIDATES: &[usize] = &[16, 32, 48, 64, 96, 128, 192, 256, 384, 512];

    #[test]
    fn exhaustive_finds_global_minimum() {
        let res = exhaustive(CANDIDATES, response);
        assert_eq!(res.best, 128);
        assert_eq!(res.evaluations, CANDIDATES.len());
        assert_eq!(res.samples.len(), CANDIDATES.len());
        assert!((res.best_cost - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hill_climb_finds_unimodal_minimum_with_fewer_evals() {
        let res = hill_climb(CANDIDATES, 100, response);
        assert_eq!(res.best, 128);
        assert!(
            res.evaluations < CANDIDATES.len(),
            "hill climb used {} evals",
            res.evaluations
        );
    }

    #[test]
    fn hill_climb_respects_eval_budget() {
        let res = hill_climb(CANDIDATES, 3, response);
        assert!(res.evaluations <= 4, "{} evals", res.evaluations); // initial + <= budget slack
    }

    #[test]
    fn successive_halving_converges_to_minimum() {
        let res = successive_halving(CANDIDATES, 1, |p, _budget| response(p));
        assert_eq!(res.best, 128);
        assert!(res.evaluations >= CANDIDATES.len());
    }

    #[test]
    fn successive_halving_with_noise_and_growing_budget() {
        // Noise shrinks as budget grows: late rounds are accurate.
        let mut calls = 0usize;
        let res = successive_halving(CANDIDATES, 1, |p, budget| {
            calls += 1;
            let noise = ((calls * 2654435761) % 100) as f64 / 100.0 / budget as f64;
            response(p) + noise * 0.4
        });
        // With noise bounded by 0.4 at budget 1 the winner must be near the
        // true optimum (96..192 band).
        assert!(
            (96..=192).contains(&res.best),
            "winner {} too far from optimum",
            res.best
        );
    }

    #[test]
    fn median_of_is_robust_to_outliers() {
        let mut i = 0;
        let m = median_of(5, || {
            i += 1;
            if i == 3 {
                1000.0
            } else {
                1.0
            }
        });
        assert_eq!(m, 1.0);
    }

    #[test]
    #[should_panic(expected = "no candidates")]
    fn empty_candidates_rejected() {
        let _ = exhaustive::<usize>(&[], |_| 0.0);
    }

    #[test]
    fn single_candidate_wins_trivially() {
        let res = exhaustive(&[64usize], response);
        assert_eq!(res.best, 64);
        let res = hill_climb(&[64usize], 10, response);
        assert_eq!(res.best, 64);
        let res = successive_halving(&[64usize], 1, |p, _| response(p));
        assert_eq!(res.best, 64);
    }
}
