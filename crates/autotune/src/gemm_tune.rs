//! GEMM blocking-parameter search.
//!
//! The blocked GEMM in `xsc-core` is governed by three cache-blocking
//! parameters ([`GemmParams`]: `MC`, `KC`, `NC`). Like tile sizes, the best
//! values are machine-dependent and non-monotone, so E08 *searches* for them
//! with the same strategies it uses for tile sizes. [`tune_gemm_blocking`]
//! runs that search and returns the winner, which callers install globally
//! via [`xsc_core::gemm::set_global_params`].

use crate::{exhaustive, median_of, SweepResult};
use xsc_core::gemm::{gemm_with_params, Transpose};
use xsc_core::{gen, GemmParams, Matrix};
use xsc_metrics::Stopwatch;

/// The default candidate grid: a small cross of `MC`/`KC`/`NC` values around
/// [`GemmParams::DEFAULT`], covering panel footprints from "fits in L1" to
/// "spills L3". Kept small (it is measured exhaustively) but wide enough
/// that the sweep is a real search, not a formality.
pub fn default_candidates() -> Vec<GemmParams> {
    let mut out = Vec::new();
    for &mc in &[64usize, 128, 256] {
        for &kc in &[128usize, 256, 512] {
            for &nc in &[256usize, 512] {
                out.push(GemmParams { mc, kc, nc });
            }
        }
    }
    out
}

/// Times one sequential blocked `s x s x s` f64 GEMM with blocking `p`,
/// returning seconds (the cost exhaustive search minimizes).
pub fn measure_gemm_seconds(
    p: GemmParams,
    a: &Matrix<f64>,
    b: &Matrix<f64>,
    c: &mut Matrix<f64>,
) -> f64 {
    let t = Stopwatch::start();
    gemm_with_params(Transpose::No, Transpose::No, 1.0, a, b, 0.0, c, p);
    t.seconds()
}

/// Sweeps `candidates` (the [`default_candidates`] grid if empty) at problem
/// size `s`, timing each with median-of-`reps` repetition, and returns the
/// full sweep result over [`GemmParams`].
///
/// The caller decides what to do with the winner — typically
/// `xsc_core::gemm::set_global_params(result.best)` so that every downstream
/// `gemm`/`par_gemm` call picks it up.
pub fn tune_gemm_blocking(
    s: usize,
    reps: usize,
    candidates: &[GemmParams],
) -> SweepResult<GemmParams> {
    let grid = if candidates.is_empty() {
        default_candidates()
    } else {
        candidates.to_vec()
    };
    let a = gen::random_matrix::<f64>(s, s, 1);
    let b = gen::random_matrix::<f64>(s, s, 2);
    let mut c = Matrix::<f64>::zeros(s, s);
    exhaustive(&grid, |p| {
        median_of(reps.max(1), || measure_gemm_seconds(p, &a, &b, &mut c))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_is_nonempty_and_normal() {
        let grid = default_candidates();
        assert!(grid.len() >= 8);
        for p in &grid {
            assert_eq!(*p, p.normalized(), "grid point {p:?} off the micro grid");
        }
    }

    #[test]
    fn tune_returns_a_candidate_from_the_grid() {
        // Tiny problem + 1 rep: this is a smoke test of the plumbing, not a
        // performance claim.
        let grid = [
            GemmParams {
                mc: 32,
                kc: 32,
                nc: 32,
            },
            GemmParams {
                mc: 64,
                kc: 64,
                nc: 64,
            },
        ];
        let res = tune_gemm_blocking(48, 1, &grid);
        assert!(grid.contains(&res.best));
        assert_eq!(res.evaluations, grid.len());
        assert!(res.best_cost.is_finite() && res.best_cost >= 0.0);
    }

    #[test]
    fn empty_candidates_fall_back_to_default_grid() {
        let res = tune_gemm_blocking(32, 1, &[]);
        assert_eq!(res.evaluations, default_candidates().len());
    }
}
