//! GEMM blocking-parameter and micro-kernel search.
//!
//! The blocked GEMM in `xsc-core` is governed by three cache-blocking
//! parameters ([`GemmParams`]: `MC`, `KC`, `NC`). Like tile sizes, the best
//! values are machine-dependent and non-monotone, so E08 *searches* for them
//! with the same strategies it uses for tile sizes. [`tune_gemm_blocking`]
//! runs that search and returns the winner, which callers install globally
//! via [`xsc_core::gemm::set_global_params`].
//!
//! The `MR x NR` micro-kernel variant ([`MicroKernel`]) is a second tuning
//! axis: every variant is bit-identical, so which one is fastest is purely
//! an empirical question this crate is allowed to answer. [`tune_gemm_config`]
//! sweeps the cross product of blocking candidates and the variants runnable
//! on this CPU, and [`install`] makes the winning [`GemmConfig`] the
//! process-wide default for both axes at once.

use crate::{exhaustive, median_of, SweepResult};
use xsc_core::gemm::{gemm_with_opts, gemm_with_params, Transpose};
use xsc_core::{gen, microkernel, GemmParams, Matrix, MicroKernel};
use xsc_metrics::Stopwatch;

/// One point in the joint GEMM tuning space: cache-blocking parameters plus
/// the micro-kernel variant that executes the register tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmConfig {
    /// Cache-blocking parameters (`MC`/`KC`/`NC`).
    pub params: GemmParams,
    /// Micro-kernel variant (bit-identical across choices).
    pub kernel: MicroKernel,
}

impl std::fmt::Display for GemmConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mc={} kc={} nc={} kernel={}",
            self.params.mc, self.params.kc, self.params.nc, self.kernel
        )
    }
}

/// The default candidate grid: a small cross of `MC`/`KC`/`NC` values around
/// [`GemmParams::DEFAULT`], covering panel footprints from "fits in L1" to
/// "spills L3". Kept small (it is measured exhaustively) but wide enough
/// that the sweep is a real search, not a formality.
pub fn default_candidates() -> Vec<GemmParams> {
    let mut out = Vec::new();
    for &mc in &[64usize, 128, 256] {
        for &kc in &[128usize, 256, 512] {
            for &nc in &[256usize, 512] {
                out.push(GemmParams { mc, kc, nc });
            }
        }
    }
    out
}

/// Times one sequential blocked `s x s x s` f64 GEMM with blocking `p`,
/// returning seconds (the cost exhaustive search minimizes).
pub fn measure_gemm_seconds(
    p: GemmParams,
    a: &Matrix<f64>,
    b: &Matrix<f64>,
    c: &mut Matrix<f64>,
) -> f64 {
    let t = Stopwatch::start();
    gemm_with_params(Transpose::No, Transpose::No, 1.0, a, b, 0.0, c, p);
    t.seconds()
}

/// Sweeps `candidates` (the [`default_candidates`] grid if empty) at problem
/// size `s`, timing each with median-of-`reps` repetition, and returns the
/// full sweep result over [`GemmParams`].
///
/// The caller decides what to do with the winner — typically
/// `xsc_core::gemm::set_global_params(result.best)` so that every downstream
/// `gemm`/`par_gemm` call picks it up.
pub fn tune_gemm_blocking(
    s: usize,
    reps: usize,
    candidates: &[GemmParams],
) -> SweepResult<GemmParams> {
    let grid = if candidates.is_empty() {
        default_candidates()
    } else {
        candidates.to_vec()
    };
    let a = gen::random_matrix::<f64>(s, s, 1);
    let b = gen::random_matrix::<f64>(s, s, 2);
    let mut c = Matrix::<f64>::zeros(s, s);
    exhaustive(&grid, |p| {
        median_of(reps.max(1), || measure_gemm_seconds(p, &a, &b, &mut c))
    })
}

/// The default joint grid: [`default_candidates`] crossed with every
/// micro-kernel variant available in this binary on this CPU. Without the
/// `simd` feature this degenerates to the blocking grid (scalar only).
pub fn default_config_candidates() -> Vec<GemmConfig> {
    let kernels = MicroKernel::available();
    default_candidates()
        .into_iter()
        .flat_map(|params| {
            kernels
                .iter()
                .map(move |&kernel| GemmConfig { params, kernel })
        })
        .collect()
}

/// Times one sequential blocked `s x s x s` f64 GEMM under `cfg`,
/// returning seconds.
pub fn measure_gemm_config_seconds(
    cfg: GemmConfig,
    a: &Matrix<f64>,
    b: &Matrix<f64>,
    c: &mut Matrix<f64>,
) -> f64 {
    let t = Stopwatch::start();
    gemm_with_opts(
        Transpose::No,
        Transpose::No,
        1.0,
        a,
        b,
        0.0,
        c,
        cfg.params,
        cfg.kernel,
    );
    t.seconds()
}

/// Sweeps the joint blocking x micro-kernel space (the
/// [`default_config_candidates`] grid if `candidates` is empty) at problem
/// size `s` with median-of-`reps` timing. Install the winner with
/// [`install`] — or inspect `samples` to compare variants at fixed
/// blocking, which is what E08/E18 report.
pub fn tune_gemm_config(
    s: usize,
    reps: usize,
    candidates: &[GemmConfig],
) -> SweepResult<GemmConfig> {
    let grid = if candidates.is_empty() {
        default_config_candidates()
    } else {
        candidates.to_vec()
    };
    let a = gen::random_matrix::<f64>(s, s, 1);
    let b = gen::random_matrix::<f64>(s, s, 2);
    let mut c = Matrix::<f64>::zeros(s, s);
    exhaustive(&grid, |cfg| {
        median_of(reps.max(1), || {
            measure_gemm_config_seconds(cfg, &a, &b, &mut c)
        })
    })
}

/// Makes `cfg` the process-wide default for both tuning axes: every
/// subsequent `gemm`/`par_gemm` call uses its blocking parameters *and*
/// its micro-kernel variant. Bit-identity across variants means this only
/// changes speed, never results.
pub fn install(cfg: GemmConfig) {
    xsc_core::gemm::set_global_params(cfg.params);
    microkernel::set_global_microkernel(cfg.kernel);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_is_nonempty_and_normal() {
        let grid = default_candidates();
        assert!(grid.len() >= 8);
        for p in &grid {
            assert_eq!(*p, p.normalized(), "grid point {p:?} off the micro grid");
        }
    }

    #[test]
    fn tune_returns_a_candidate_from_the_grid() {
        // Tiny problem + 1 rep: this is a smoke test of the plumbing, not a
        // performance claim.
        let grid = [
            GemmParams {
                mc: 32,
                kc: 32,
                nc: 32,
            },
            GemmParams {
                mc: 64,
                kc: 64,
                nc: 64,
            },
        ];
        let res = tune_gemm_blocking(48, 1, &grid);
        assert!(grid.contains(&res.best));
        assert_eq!(res.evaluations, grid.len());
        assert!(res.best_cost.is_finite() && res.best_cost >= 0.0);
    }

    #[test]
    fn empty_candidates_fall_back_to_default_grid() {
        let res = tune_gemm_blocking(32, 1, &[]);
        assert_eq!(res.evaluations, default_candidates().len());
    }

    #[test]
    fn config_grid_crosses_blocking_with_available_kernels() {
        let grid = default_config_candidates();
        let kernels = MicroKernel::available();
        assert_eq!(grid.len(), default_candidates().len() * kernels.len());
        for k in &kernels {
            assert!(grid.iter().any(|c| c.kernel == *k), "missing {k}");
        }
    }

    #[test]
    fn config_tune_returns_a_candidate_and_installs() {
        let p = GemmParams {
            mc: 32,
            kc: 32,
            nc: 32,
        };
        let grid: Vec<GemmConfig> = MicroKernel::available()
            .into_iter()
            .map(|kernel| GemmConfig { params: p, kernel })
            .collect();
        let res = tune_gemm_config(48, 1, &grid);
        assert!(grid.contains(&res.best));
        assert_eq!(res.evaluations, grid.len());
        install(res.best);
        assert_eq!(xsc_core::gemm::global_params(), p);
        assert_eq!(microkernel::global_microkernel(), res.best.kernel);
        // Leave the process defaults as other tests expect them.
        xsc_core::gemm::clear_global_params();
        microkernel::clear_global_microkernel();
    }
}
