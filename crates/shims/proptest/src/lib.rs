//! Offline stand-in for the `proptest` crate (API subset used by `xsc`).
//!
//! Supports the property-test surface the workspace uses: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, range and tuple
//! strategies, `proptest::collection::vec`, `any::<bool>()`, `prop_map`,
//! and the `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from real proptest: cases are sampled from a fixed seed
//! derived from the test's module path and name (bit-reproducible run to
//! run), there is **no shrinking** (a failing case reports its raw inputs
//! via the assert message), and `prop_assume!` skips the current case
//! rather than resampling, so heavy use of assumptions reduces the
//! effective case count.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic test RNG used by the [`proptest!`] runner.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Creates an RNG seeded from a stable hash of `name` (typically the
    /// test's module path + function name).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a: stable across platforms and compiler versions.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(h),
        }
    }

    fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.inner.next_u64()
    }

    fn gen_usize(&mut self, range: Range<usize>) -> usize {
        self.inner.gen_range(range)
    }
}

/// A value generator. Unlike real proptest there is no value tree /
/// shrinking: `generate` directly yields one sampled value.
pub trait Strategy {
    /// Type of values produced.
    type Value;
    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty => $via:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
int_strategy!(usize => usize, u64 => u64, u32 => u32, i64 => i64, i32 => i32);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy yielding arbitrary values of `T` (see [`any`]).
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, size)` — a `Vec` whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_usize(self.size.lo..self.size.hi + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        Arbitrary, Just, ProptestConfig, Strategy,
    };
}

/// Mirrors `proptest::test_runner` for code that names the RNG explicitly.
pub mod test_runner {
    pub use crate::TestRng;
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments `cases` times from a
/// deterministic per-test RNG and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its sampled inputs don't satisfy a
/// precondition (proceeds to the next case; no resampling).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Sampled ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(n in 1usize..10, k in 0u64..100, s in -5i64..5) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(k < 100);
            prop_assert!((-5..5).contains(&s));
        }

        #[test]
        fn vec_strategy_sizes(v in collection::vec(0usize..5, 2..=6)) {
            prop_assert!((2..=6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn prop_map_applies(x in (1usize..4, any::<bool>()).prop_map(|(a, b)| if b { a * 2 } else { a })) {
            prop_assert!((1..=6).contains(&x));
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_rng_is_stable() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::deterministic("y");
        assert_ne!(crate::TestRng::deterministic("x").next_u64(), c.next_u64());
    }
}
