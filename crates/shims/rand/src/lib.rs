//! Offline stand-in for the `rand` crate (API subset used by `xsc`).
//!
//! Provides a deterministic, seedable [`rngs::SmallRng`] (xoshiro256++ with
//! SplitMix64 seeding — the same generator family the real `small_rng`
//! feature selects) and the [`Rng`]/[`SeedableRng`] trait surface the
//! workspace calls: `gen_range` over integer and float ranges and
//! `gen_bool`. Streams are stable across runs and platforms, which is all
//! the reproducible experiments require; they do not match the real
//! `rand` crate's streams.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling from a range, used by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value from `self` using `rng`.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Minimal core RNG interface: a stream of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// User-facing RNG methods (blanket-implemented over [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform sample from a range (half-open).
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        if p <= 0.0 {
            // Consume a word either way so the stream advances identically
            // for every rate, keeping sweeps at different rates aligned.
            self.next_u64();
            return false;
        }
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Maps a 64-bit word to `[0, 1)` with 53-bit resolution.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo reduction: the bias is < 2^-64 per draw for the
                // span sizes these experiments use, far below any effect
                // the tests measure.
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, i64, i32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically solid; seeded via
    /// SplitMix64 exactly as the reference implementation recommends.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..1 << 40) == b.gen_range(0u64..1 << 40))
            .count();
        assert!(same < 4, "streams should differ ({same} collisions)");
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            let i = r.gen_range(5usize..17);
            assert!((5..17).contains(&i));
            let n = r.gen_range(-3i64..4);
            assert!((-3..4).contains(&n));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(4);
        assert!((0..200).all(|_| !r.gen_bool(0.0)));
        assert!((0..200).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_rate_is_roughly_respected() {
        let mut r = SmallRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut r = SmallRng::seed_from_u64(6);
        let mean: f64 = (0..10_000).map(|_| r.gen_range(-1.0..1.0)).sum::<f64>() / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }
}
