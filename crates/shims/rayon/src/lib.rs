//! Offline stand-in for the `rayon` crate (API subset used by `xsc`).
//!
//! The build container has no crates.io access, so this crate reimplements
//! the data-parallel surface the workspace actually calls: `par_iter`,
//! `par_iter_mut`, `into_par_iter` (ranges and vectors), `par_chunks`,
//! `par_chunks_mut`, with `map` / `enumerate` / `for_each` / `collect` on
//! the result, plus `ThreadPoolBuilder::install` for thread-count sweeps.
//!
//! Unlike rayon's lazy work-stealing iterators, [`ParIter`] materializes
//! its items and fans them out as contiguous stripes over scoped OS
//! threads — one stripe per worker, order-preserving. That is exactly the
//! bulk-synchronous shape every `xsc` call site uses, so semantics match;
//! only the scheduling (static stripes vs work stealing) differs. Panics in
//! worker closures propagate to the caller, as with rayon.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::ops::Range;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`]
    /// (0 = use the hardware default).
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads parallel operations currently target.
pub fn current_num_threads() -> usize {
    let installed = POOL_THREADS.with(Cell::get);
    if installed > 0 {
        installed
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Applies `f` to every item on a striped scoped-thread pool, preserving
/// input order in the output.
fn run_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let threads = current_num_threads().min(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let len = items.len();
    let base = len / threads;
    let extra = len % threads;
    let mut rest = items;
    let mut stripes: Vec<Vec<T>> = Vec::with_capacity(threads);
    for t in 0..threads {
        let take = base + usize::from(t < extra);
        let tail = rest.split_off(take);
        stripes.push(std::mem::replace(&mut rest, tail));
    }
    let f = &f;
    let per_stripe: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = stripes
            .into_iter()
            .map(|stripe| s.spawn(move || stripe.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    });
    per_stripe.into_iter().flatten().collect()
}

/// A materialized "parallel iterator": holds its items and runs terminal
/// operations striped across scoped threads.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Pairs each item with its index (order-preserving).
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Applies `f` to every item **in parallel** (eagerly — this is where
    /// the fork happens in a `map(...).collect()` chain).
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: run_map(self.items, f),
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        run_map(self.items, f);
    }

    /// Collects the (already computed) items in order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sums the items in order.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }
}

/// Conversion into a [`ParIter`] by value.
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Shared-slice parallel views (`par_iter`, `par_chunks`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over shared references.
    fn par_iter(&self) -> ParIter<&T>;
    /// Parallel iterator over `chunk`-sized shared sub-slices.
    fn par_chunks(&self, chunk: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }

    fn par_chunks(&self, chunk: usize) -> ParIter<&[T]> {
        assert!(chunk > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks(chunk).collect(),
        }
    }
}

/// Mutable-slice parallel views (`par_iter_mut`, `par_chunks_mut`).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over exclusive references.
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
    /// Parallel iterator over `chunk`-sized exclusive sub-slices.
    fn par_chunks_mut(&mut self, chunk: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }

    fn par_chunks_mut(&mut self, chunk: usize) -> ParIter<&mut [T]> {
        assert!(chunk > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks_mut(chunk).collect(),
        }
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type for [`ThreadPoolBuilder::build`] (construction never fails
/// in the shim; the type exists for signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (hardware) thread count.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker count (0 = hardware default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self.num_threads,
        })
    }
}

/// A "pool" that scopes a thread-count override: parallel operations run
/// inside [`ThreadPool::install`] use this pool's worker count.
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count installed.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|c| c.replace(self.threads));
        let out = f();
        POOL_THREADS.with(|c| c.set(prev));
        out
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// Glob-import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let squares: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, (0..1000).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_visits_everything() {
        let count = AtomicUsize::new(0);
        let v = vec![1u64; 777];
        v.par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 777);
    }

    #[test]
    fn chunks_mut_writes_disjoint() {
        let mut v = vec![0usize; 100];
        v.par_chunks_mut(7).enumerate().for_each(|(k, chunk)| {
            for x in chunk.iter_mut() {
                *x = k;
            }
        });
        assert_eq!(v[0], 0);
        assert_eq!(v[7], 1);
        assert_eq!(v[98], 14);
    }

    #[test]
    fn collect_into_result_short_circuits_value() {
        let r: Result<Vec<usize>, &str> = (0..10usize)
            .into_par_iter()
            .map(|i| if i == 5 { Err("boom") } else { Ok(i) })
            .collect();
        assert_eq!(r, Err("boom"));
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn parallel_actually_uses_multiple_threads_when_available() {
        let ids = std::sync::Mutex::new(std::collections::HashSet::new());
        (0..64usize).into_par_iter().for_each(|_| {
            ids.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        let distinct = ids.into_inner().unwrap().len();
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        if hw > 1 {
            assert!(
                distinct > 1,
                "expected parallel execution, got {distinct} thread(s)"
            );
        }
    }

    #[test]
    fn panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            (0..8usize).into_par_iter().for_each(|i| {
                if i == 3 {
                    panic!("stripe panic");
                }
            });
        });
        assert!(r.is_err());
    }
}
