//! Offline stand-in for the `parking_lot` crate (API subset used by `xsc`).
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the thin slice of `parking_lot` it actually uses: `Mutex`, `RwLock`, and
//! `Condvar` without lock poisoning. Each wraps the `std::sync` primitive
//! and recovers from poisoning (a panicking task kernel must not poison the
//! tile locks the resilient executor later retries under).

#![forbid(unsafe_code)]

use std::sync;

/// A mutual-exclusion lock without poisoning (panics while holding the lock
/// leave the data accessible, as in real `parking_lot`).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take ownership.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(_) => unreachable!("poison recovered via get_mut"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A condition variable compatible with this crate's [`Mutex`].
#[derive(Default, Debug)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and waits for a notification.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock without poisoning.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        RwLockReadGuard { inner }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        RwLockWriteGuard { inner }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = catch_unwind(AssertUnwindSafe(move || {
            let _g = m2.lock();
            panic!("kernel fault");
        }));
        // A poisoned std mutex would panic here; the shim recovers.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(7);
        let (a, b) = (l.read(), l.read());
        assert_eq!((*a, *b), (7, 7));
        drop((a, b));
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            true
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(h.join().unwrap());
    }
}
