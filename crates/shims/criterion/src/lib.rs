//! Offline stand-in for the `criterion` crate (API subset used by `xsc`).
//!
//! A plain timing harness: each benchmark runs `sample_size` timed
//! iterations after one warm-up and prints min / mean wall time (plus
//! throughput when declared). No statistical analysis, HTML reports, or
//! baseline comparison — enough to run `cargo bench` offline and eyeball
//! regressions.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// Prevents the optimizer from discarding a value (identity in the shim —
/// good enough given the kernels all write through shared memory).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared work per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (e.g. flops) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark (`name/param`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), param),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    results: Vec<f64>,
}

impl Bencher {
    /// Times `f` over the configured number of samples (after one
    /// warm-up call) and records the per-iteration seconds.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        black_box(f()); // warm-up
        self.results.clear();
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(f());
            self.results.push(t.elapsed().as_secs_f64());
        }
    }
}

/// Benchmark registry (the shim just runs and prints immediately).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbench group: {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, 10, None, f);
        self
    }
}

/// A group of benchmarks sharing sample size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.sample_size, self.throughput, f);
        self
    }

    /// Runs a parameterized benchmark (the input is passed through to the
    /// closure, as with real criterion).
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&id.label, self.sample_size, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op beyond symmetry with real criterion).
    pub fn finish(self) {}
}

fn run_one(
    name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples,
        results: Vec::new(),
    };
    f(&mut b);
    if b.results.is_empty() {
        println!("  {name:<28} (no samples)");
        return;
    }
    let min = b.results.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = b.results.iter().sum::<f64>() / b.results.len() as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:>8.2} Melem/s", n as f64 / min / 1e6),
        Throughput::Bytes(n) => format!("  {:>8.2} MB/s", n as f64 / min / 1e6),
    });
    println!(
        "  {name:<28} min {:>10} mean {:>10}{}",
        fmt_secs(min),
        fmt_secs(mean),
        rate.unwrap_or_default()
    );
}

fn fmt_secs(x: f64) -> String {
    if x >= 1.0 {
        format!("{x:.3}s")
    } else if x >= 1e-3 {
        format!("{:.3}ms", x * 1e3)
    } else {
        format!("{:.1}us", x * 1e6)
    }
}

/// Collects benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more [`criterion_group!`] registries.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Accept and ignore criterion CLI flags (e.g. `--bench`).
            let _args: Vec<String> = std::env::args().collect();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 7), &7usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(demo_group, sample_bench);

    #[test]
    fn group_runs_without_panicking() {
        demo_group();
    }

    #[test]
    fn id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("seq", 128).label, "seq/128");
    }
}
