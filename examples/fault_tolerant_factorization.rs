//! Algorithm-based fault tolerance in action: checksum-encoded GEMM that
//! locates and repairs an injected bit flip, a verified Cholesky, and a CG
//! solve that survives silent data corruption.
//!
//! ```sh
//! cargo run --release -p xsc-examples --bin fault_tolerant_factorization
//! ```

use xsc_core::gemm::{gemm, Transpose};
use xsc_core::{gen, Matrix};
use xsc_examples::banner;
use xsc_ft::abft::{abft_gemm, verified_cholesky};
use xsc_ft::checkpoint::{resilient_cg, Recovery};
use xsc_ft::inject::{FaultInjector, FaultKind};
use xsc_ft::AbftOutcome;
use xsc_sparse::stencil::{build_matrix, build_rhs, Geometry};

fn main() {
    banner("1. ABFT GEMM: locate and repair a bit flip from checksums");
    let n = 256;
    let a = gen::random_matrix::<f64>(n, n, 1);
    let b = gen::random_matrix::<f64>(n, n, 2);
    let mut inj = FaultInjector::new(1.0, FaultKind::BitFlip, 3);
    let (repaired, outcome) = abft_gemm(&a, &b, |c| {
        let (i, j) = (n / 4, n / 2);
        let v = c.get(i, j);
        c.set(i, j, inj.corrupt_value(v));
        println!("  injected a bit flip at ({i},{j}) during the multiply");
    });
    match outcome {
        AbftOutcome::Corrected { row, col, magnitude } => println!(
            "  checksums located the fault at ({row},{col}), corruption magnitude {magnitude:.2e}; repaired"
        ),
        other => println!("  unexpected outcome: {other:?}"),
    }
    let mut reference = Matrix::<f64>::zeros(n, n);
    gemm(
        Transpose::No,
        Transpose::No,
        1.0,
        &a,
        &b,
        0.0,
        &mut reference,
    );
    println!(
        "  repaired product matches the fault-free run: max diff {:.2e}",
        repaired.max_abs_diff(&reference)
    );

    banner("2. Checksum-verified Cholesky detects a tampered factor");
    let spd = gen::random_spd::<f64>(256, 5);
    let mut f = spd.clone();
    let clean = verified_cholesky(&mut f, 64, |l| {
        let v = l.get(100, 37);
        l.set(100, 37, v + 1.0);
    })
    .unwrap();
    println!(
        "  verification flagged the tampered factorization: detected = {}",
        !clean
    );

    banner("3. CG under silent faults: checkpoint/rollback recovery");
    let g = Geometry::new(8, 8, 8);
    let sp = build_matrix(g);
    let (mut rhs, _) = build_rhs(&sp);
    for (i, v) in rhs.iter_mut().enumerate() {
        *v += ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
    }
    let mut inj = FaultInjector::new(0.1, FaultKind::BitFlip, 11);
    let rep = resilient_cg(
        &sp,
        &rhs,
        2000,
        1e-9,
        &mut inj,
        Recovery::Checkpoint { interval: 10 },
        5,
        1e-6,
    );
    println!(
        "  converged={} after {} iterations; {} faults injected, {} recoveries, {} iterations of work redone",
        rep.converged, rep.iterations, rep.faults, rep.recoveries, rep.wasted_iterations
    );
    println!("  final true residual: {:.2e}", rep.final_residual);
}
