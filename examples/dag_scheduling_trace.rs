//! Watch the dataflow runtime work: factor a tiled matrix, print the
//! per-worker Gantt chart, and compare against the fork-join engine and a
//! discrete-event replay on a much wider simulated machine.
//!
//! ```sh
//! cargo run --release -p xsc-examples --bin dag_scheduling_trace
//! ```

use xsc_core::{gen, TileMatrix};
use xsc_dense::cholesky;
use xsc_dense::poison::Poison;
use xsc_examples::banner;
use xsc_machine::des::{simulate, DesConfig};
use xsc_runtime::{Executor, SchedPolicy};

fn main() {
    let n = 1024;
    let nb = 128;
    let a = gen::random_spd::<f64>(n, 9);

    banner("Dataflow execution trace (tiled Cholesky)");
    let tiles = TileMatrix::from_matrix(&a, nb);
    let exec = Executor::new(4, SchedPolicy::CriticalPath);
    let trace = cholesky::cholesky_dag(&tiles, &exec).unwrap();
    println!(
        "{} tasks over {} workers, makespan {:.1} ms, utilization {:.1}%",
        trace.tasks_run(),
        trace.threads(),
        trace.makespan().as_secs_f64() * 1e3,
        trace.utilization() * 100.0
    );
    println!("{}", trace.ascii_gantt(72));
    if let Some(e) = trace.events().first() {
        println!("first task executed: {}", trace.task_name(e.task));
    }

    banner("Same algorithm, fork-join engine (barrier after every phase)");
    let tiles_fj = TileMatrix::from_matrix(&a, nb);
    let t = xsc_metrics::Stopwatch::start();
    cholesky::cholesky_forkjoin(&tiles_fj).unwrap();
    println!(
        "fork-join wall clock: {:.1} ms",
        t.elapsed().as_secs_f64() * 1e3
    );

    banner("Discrete-event replay of the same DAG on a 64-worker model");
    let model_tiles = TileMatrix::<f64>::zeros(2048, 2048, nb); // 16x16 tiles
    let mut g = cholesky::build_graph(&model_tiles, &Poison::new());
    let edges = g.edge_list();
    let costs: Vec<f64> = g.costs().iter().map(|&c| c as f64 / 40e9).collect();
    let rep = simulate(
        costs.len(),
        &edges,
        &costs,
        DesConfig {
            workers: 64,
            comm_delay: 1e-6,
        },
    );
    println!(
        "simulated makespan {:.3e}s, speedup {:.1}x, utilization {:.1}% (critical path {:.3e}s)",
        rep.makespan,
        rep.speedup,
        rep.utilization * 100.0,
        rep.critical_path
    );
}
