//! Mixed-precision iterative refinement, step by step: factor in fp32 (or
//! emulated fp16), watch the backward error contract to the f64 floor, and
//! see it fail honestly when the matrix is too ill-conditioned.
//!
//! ```sh
//! cargo run --release -p xsc-examples --bin mixed_precision_solver
//! ```

use xsc_core::gen;
use xsc_examples::banner;
use xsc_precision::gmres_ir::gmres_ir_solve;
use xsc_precision::ir::lu_ir_solve;
use xsc_precision::Half;

fn main() {
    let n = 512;

    banner("Well-conditioned system: fp32 factorization + refinement");
    let a = gen::diag_dominant::<f64>(n, 1);
    let b = gen::rhs_for_unit_solution(&a);
    let (_, rep) = lu_ir_solve::<f32>(&a, &b, 30, None).expect("converges");
    println!("backward error per refinement step:");
    for (i, be) in rep.residual_history.iter().enumerate() {
        println!("  step {i}: {be:.3e}");
    }

    banner("Same system, emulated fp16 factorization");
    let (_, rep16) = lu_ir_solve::<Half>(&a, &b, 60, None).expect("converges");
    println!(
        "fp16 needed {} refinement steps (fp32 needed {})",
        rep16.iterations, rep.iterations
    );

    banner("Ill-conditioned system (cond ~ 3e8): classic IR vs GMRES-IR");
    let a_bad = gen::ill_conditioned_spd::<f64>(n, 3e8, 2);
    let b_bad = gen::rhs_for_unit_solution(&a_bad);
    match lu_ir_solve::<f32>(&a_bad, &b_bad, 40, None) {
        Ok((_, r)) => println!("classic fp32-IR converged in {} steps", r.iterations),
        Err(e) => println!("classic fp32-IR failed as theory predicts: {e}"),
    }
    match gmres_ir_solve::<f32>(&a_bad, &b_bad, 25, 30, None) {
        Ok((_, r)) => println!(
            "GMRES-IR (fp32 LU as preconditioner) converged: {} outer / {} inner iterations",
            r.outer_iterations, r.inner_iterations
        ),
        Err(e) => println!("GMRES-IR failed: {e}"),
    }
}
