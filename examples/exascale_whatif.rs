//! What-if analysis on modeled machines: price your algorithm on the 2008
//! petascale node, the 2016 node, and the projected exascale node — the
//! substitute for hardware nobody has on their desk.
//!
//! ```sh
//! cargo run --release -p xsc-examples --bin exascale_whatif
//! ```

use xsc_examples::banner;
use xsc_machine::collectives::{best_allreduce, KrylovIterModel};
use xsc_machine::comm_optimal::{matmul_comm_words, matmul_lower_bound_words, MatmulAlgorithm};
use xsc_machine::{KernelProfile, MachineModel};

fn main() {
    banner("1. The same HPCG run on three machine generations");
    let n = 104usize.pow(3);
    let profile = KernelProfile::hpcg(n, 27 * n, 50);
    for m in MachineModel::generations() {
        let p = m.predict(&profile);
        println!(
            "  {:<22} peak {:>7.2} Tflop/s | achieves {:>5.2}% of it | {:>8.1} J | bound: {:?}",
            m.name,
            m.peak_flops() / 1e12,
            p.fraction_of_peak * 100.0,
            p.energy_joules,
            p.bound
        );
    }
    println!("  -> flops multiply ~500x, the achieved fraction FALLS: the keynote's thesis.");

    banner("2. What a global dot product costs as the machine grows");
    let m = MachineModel::node_2016();
    for p in [64usize, 4096, 262_144, 1 << 20] {
        let (alg, t) = best_allreduce(&m, p, 16);
        println!(
            "  {p:>8} ranks: allreduce(2 f64) = {:>7.1} us  ({alg:?})",
            t * 1e6
        );
    }
    let classic = KrylovIterModel::classic_cg(50e-6);
    let piped = KrylovIterModel::pipelined_cg(50e-6);
    println!(
        "  at 1M ranks one CG iteration: classic {:.0} us, pipelined {:.0} us",
        classic.time_per_iteration(&m, 1 << 20) * 1e6,
        piped.time_per_iteration(&m, 1 << 20) * 1e6
    );

    banner("3. Communication lower bounds for matmul (n = 50 000)");
    let n = 50_000;
    for p in [512usize, 32_768] {
        let bound = matmul_lower_bound_words(n, p);
        let w2d = matmul_comm_words(MatmulAlgorithm::Summa2d, n, p);
        let w25 = matmul_comm_words(MatmulAlgorithm::TwoPointFiveD { c: 8 }, n, p);
        println!(
            "  p={p:>6}: lower bound {bound:.2e} words | 2D SUMMA {:.1}x above | 2.5D(c=8) {:.1}x above",
            w2d / bound,
            w25 / bound
        );
    }
    println!("\n  Full tables: cargo run --release -p xsc-bench --bin e11_exascale_projection");
    println!("               cargo run --release -p xsc-bench --bin e16_comm_optimal");
}
