//! Quickstart: a tour of the `xsc` public API in five minutes.
//!
//! ```sh
//! cargo run --release -p xsc-examples --bin quickstart
//! ```

use xsc_core::{gen, norms, TileMatrix};
use xsc_dense::cholesky;
use xsc_examples::banner;
use xsc_precision::ir::lu_ir_solve;
use xsc_runtime::{Executor, SchedPolicy};
use xsc_sparse::{run_hpcg, Geometry};

fn main() {
    banner("1. Tiled Cholesky on the dataflow runtime");
    let n = 512;
    let a = gen::random_spd::<f64>(n, 42);
    let b = gen::rhs_for_unit_solution(&a);

    // Partition into 128x128 tiles and factor: tasks are inserted in
    // sequential order with tile-level read/write declarations; the runtime
    // derives the DAG and executes it on a worker pool.
    let tiles = TileMatrix::from_matrix(&a, 128);
    let exec = Executor::with_all_cores(SchedPolicy::CriticalPath);
    let trace = cholesky::cholesky_dag(&tiles, &exec).expect("matrix is SPD");
    println!(
        "factored {n}x{n} as {} tile tasks on {} workers, utilization {:.1}%",
        trace.tasks_run(),
        trace.threads(),
        trace.utilization() * 100.0
    );

    let mut x = b.clone();
    cholesky::solve(&tiles, &mut x);
    println!(
        "solve residual ||b - Ax||/||b|| = {:.2e}",
        norms::relative_residual(&a, &x, &b)
    );

    banner("2. Mixed-precision iterative refinement");
    let (x_ir, report) = lu_ir_solve::<f32>(&a, &b, 30, None).expect("IR converged");
    println!(
        "factored in {}, refined to f64 accuracy in {} iterations; residual {:.2e}",
        report.factor_precision,
        report.iterations,
        norms::relative_residual(&a, &x_ir, &b)
    );

    banner("3. A small HPCG-like run (27-point stencil, MG-preconditioned CG)");
    let res = run_hpcg(Geometry::new(24, 24, 24), 3, 25);
    println!(
        "{} rows, {} nonzeros: {:.2} Gflop/s, final residual {:.2e} ({} iterations)",
        res.n, res.nnz, res.gflops, res.final_residual, res.iterations
    );

    println!("\nNext: the experiment suite regenerates every figure of the paper —");
    println!("  cargo bench -p xsc-bench --bench experiments");
}
