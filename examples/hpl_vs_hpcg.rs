//! The keynote's headline demonstration on your own machine: dense LU
//! (HPL-like) runs near the machine's measured peak; the PDE-shaped HPCG
//! workload runs at a small fraction of it.
//!
//! ```sh
//! cargo run --release -p xsc-examples --bin hpl_vs_hpcg
//! ```

use xsc_dense::hpl;
use xsc_examples::banner;
use xsc_sparse::{run_hpcg, Geometry};

fn main() {
    banner("Measuring 'peak': best parallel dgemm rate");
    let peak = hpl::measure_peak_gflops(384, 3);
    println!("peak = {peak:.2} Gflop/s");

    banner("HPL-like: blocked LU with partial pivoting + solve");
    let r = hpl::run_hpl(1024, 128, 7).expect("LU should not break down");
    println!(
        "n={}: {:.2} Gflop/s = {:.1}% of peak (scaled residual {:.2e}, {})",
        r.n,
        r.gflops,
        100.0 * r.gflops / peak,
        r.scaled_residual,
        if r.passed { "PASSED" } else { "FAILED" }
    );

    banner("HPCG-like: multigrid-preconditioned CG on the 27-point stencil");
    let h = run_hpcg(Geometry::new(32, 32, 32), 3, 50);
    println!(
        "{} rows: {:.2} Gflop/s = {:.1}% of peak (residual {:.2e} after {} iterations)",
        h.n,
        h.gflops,
        100.0 * h.gflops / peak,
        h.final_residual,
        h.iterations
    );

    println!(
        "\nThe gap — {:.0}x — is the keynote's argument: machines optimized for the",
        (r.gflops / peak) / (h.gflops / peak)
    );
    println!("HPL number are starved on the bandwidth real applications need.");
}
