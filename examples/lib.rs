//! Shared helpers for the `xsc` examples (each example is a standalone
//! binary in this directory; run one with
//! `cargo run --release -p xsc-examples --bin quickstart`).

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}
