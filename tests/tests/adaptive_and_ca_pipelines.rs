//! Integration tests for the adaptive precision dispatcher and the
//! communication-avoiding Krylov stack.

use xsc_core::{cond, factor, gen, norms};
use xsc_precision::{adaptive_solve, SolverChoice};
use xsc_sparse::matrix_powers::matrix_powers;
use xsc_sparse::sstep::s_step_cg;
use xsc_sparse::stencil::{build_matrix, build_rhs, Geometry};
use xsc_sparse::{pcg, pipelined_cg, Identity};

#[test]
fn adaptive_solver_escalates_with_conditioning() {
    // Sweep condition numbers; the chosen strategy must be monotone:
    // ClassicIr -> GmresIr -> FullPrecision as kappa grows.
    let rank = |c: SolverChoice| match c {
        SolverChoice::ClassicIr => 0,
        SolverChoice::GmresIr => 1,
        SolverChoice::FullPrecision => 2,
    };
    let mut last = 0;
    for (i, kappa) in [1e2, 3e8, 1e13].into_iter().enumerate() {
        let a = gen::ill_conditioned_spd::<f64>(48, kappa, 7 + i as u64);
        let b = gen::rhs_for_unit_solution(&a);
        let (x, rep) = adaptive_solve(&a, &b).unwrap();
        assert!(
            rank(rep.choice) >= last,
            "κ={kappa:.0e} chose {:?} after a harder choice earlier",
            rep.choice
        );
        last = rank(rep.choice);
        assert!(norms::hpl_scaled_residual(&a, &x, &b) < 16.0);
    }
    assert_eq!(last, 2, "κ=1e13 must end at full precision");
}

#[test]
fn condest_agrees_with_ir_behavior() {
    // If the estimator says classic IR converges, it must; if it says it
    // cannot (by a wide margin), it must not.
    let a_good = gen::diag_dominant::<f64>(48, 1);
    let mut lu = a_good.clone();
    let piv = factor::getrf_blocked(&mut lu, 16).unwrap();
    let k_good = cond::condest(&a_good, &lu, &piv);
    assert!(cond::ir_should_converge(k_good, f32::EPSILON as f64));
    let b = gen::rhs_for_unit_solution(&a_good);
    assert!(xsc_precision::lu_ir_solve::<f32>(&a_good, &b, 30, None).is_ok());

    let a_bad = gen::ill_conditioned_spd::<f64>(48, 1e12, 2);
    let mut lu = a_bad.clone();
    let piv = factor::getrf_blocked(&mut lu, 16).unwrap();
    let k_bad = cond::condest(&a_bad, &lu, &piv);
    assert!(!cond::ir_should_converge(k_bad, f32::EPSILON as f64));
}

#[test]
fn all_cg_variants_reach_the_same_solution() {
    let g = Geometry::new(8, 8, 8);
    let a = build_matrix(g);
    let (mut b, _) = build_rhs(&a);
    for (i, v) in b.iter_mut().enumerate() {
        *v += ((i * 7919) % 103) as f64 / 103.0 - 0.5;
    }
    let n = a.nrows();

    let mut x_classic = vec![0.0; n];
    let classic = pcg(&a, &b, &mut x_classic, 1000, 1e-10, &Identity);
    let mut x_pipe = vec![0.0; n];
    let pipe = pipelined_cg(&a, &b, &mut x_pipe, 1000, 1e-10);
    let mut x_ca = vec![0.0; n];
    let ca = s_step_cg(&a, &b, &mut x_ca, 3, 1000, 1e-10);

    assert!(classic.converged && pipe.converged && ca.converged);
    for i in 0..n {
        assert!(
            (x_classic[i] - x_pipe[i]).abs() < 1e-7,
            "pipelined differs at {i}"
        );
        assert!(
            (x_classic[i] - x_ca[i]).abs() < 1e-7,
            "s-step differs at {i}"
        );
    }
}

#[test]
fn matrix_powers_feeds_s_step_consistently() {
    // The basis the matrix-powers kernel builds spans the Krylov space the
    // s-step method uses: A^k x computed by MPK equals k repeated SpMVs.
    let g = Geometry::new(5, 5, 5);
    let a = build_matrix(g);
    let x: Vec<f64> = (0..a.nrows())
        .map(|i| ((i * 31) % 17) as f64 - 8.0)
        .collect();
    let mp = matrix_powers(&a, &x, 4, 25);
    let mut v = x.clone();
    for k in 1..=4 {
        let mut next = vec![0.0; a.nrows()];
        a.spmv(&v, &mut next);
        v = next;
        for (u, w) in mp.basis[k].iter().zip(v.iter()) {
            assert!((u - w).abs() < 1e-11, "power {k} diverges");
        }
    }
    assert_eq!(mp.rounds_saved(), 3);
}

#[test]
fn chebyshev_mg_hpcg_pipeline() {
    // Full alternative HPCG pipeline: Chebyshev-smoothed MG preconditioning
    // CG end to end.
    use xsc_sparse::mg::{MgPreconditioner, Smoother};
    let g = Geometry::new(16, 16, 16);
    let a = build_matrix(g);
    let (b, _) = build_rhs(&a);
    let mg = MgPreconditioner::with_smoother(g, 3, Smoother::Chebyshev { degree: 4 });
    let mut x = vec![0.0; a.nrows()];
    let res = pcg(&a, &b, &mut x, 100, 1e-9, &mg);
    assert!(res.converged, "residual {:?}", res.final_residual());
    assert!(res.iterations <= 30, "{} iterations", res.iterations);
}
