//! End-to-end runs of both benchmark drivers — the integration HPL and HPCG
//! themselves perform before reporting a number.

use xsc_core::{factor, gen, norms};
use xsc_dense::hpl;
use xsc_sparse::{run_hpcg, Geometry};

#[test]
fn hpl_like_run_passes_acceptance() {
    let r = hpl::run_hpl(192, 48, 1).expect("random HPL matrix is nonsingular");
    assert!(r.passed, "scaled residual {}", r.scaled_residual);
    assert!(r.gflops > 0.0);
    assert!(r.seconds > 0.0);
}

#[test]
fn parallel_lu_agrees_with_sequential_reference_end_to_end() {
    let n = 160;
    let a = gen::random_matrix::<f64>(n, n, 2);
    let b = gen::rhs_for_unit_solution(&a);

    let mut f_par = a.clone();
    let piv_par = hpl::par_getrf(&mut f_par, 32).unwrap();
    let mut x_par = b.clone();
    factor::getrf_solve(&f_par, &piv_par, &mut x_par);

    let mut f_seq = a.clone();
    let piv_seq = factor::getrf_blocked(&mut f_seq, 32).unwrap();
    let mut x_seq = b.clone();
    factor::getrf_solve(&f_seq, &piv_seq, &mut x_seq);

    assert_eq!(piv_par, piv_seq);
    for (p, s) in x_par.iter().zip(x_seq.iter()) {
        assert!((p - s).abs() < 1e-10);
    }
    assert!(norms::relative_residual(&a, &x_par, &b) < 1e-10);
}

#[test]
fn hpcg_like_run_converges_and_accounts_flops() {
    let g = Geometry::new(16, 16, 16);
    let r = run_hpcg(g, 3, 20);
    assert_eq!(r.n, 4096);
    assert!(r.passed, "final residual {}", r.final_residual);
    assert!(r.final_residual < 1e-6);
    // Gflop/s must be consistent with a plausible flop count: at least
    // 20 iterations x 2 nnz flops for the SpMVs alone.
    let min_flops = 20.0 * 2.0 * r.nnz as f64;
    assert!(
        r.gflops * r.seconds * 1e9 > min_flops,
        "accounted flops below the SpMV floor"
    );
}

#[test]
fn hpl_and_hpcg_gap_has_the_right_direction() {
    // Same machine, same accounting style: dense LU must achieve a higher
    // flop rate than the memory-bound HPCG pipeline. (n is large enough
    // that blocked LU reaches its asymptotic rate even in the test
    // profile, where debug assertions tax the dense indexing.)
    let r_hpl = hpl::run_hpl(512, 128, 3).unwrap();
    // The grid must exceed the caches (a 16^3 problem is cache-resident
    // and loses its memory-bound character): 32^3 is ~14 MB of matrix.
    let r_hpcg = run_hpcg(Geometry::new(32, 32, 32), 3, 10);
    assert!(
        r_hpl.gflops > r_hpcg.gflops,
        "HPL {} Gflop/s should exceed HPCG {} Gflop/s",
        r_hpl.gflops,
        r_hpcg.gflops
    );
}
