//! Property tests for the resilient runtime's reproducibility guarantees:
//! a chaos campaign is a *function of its seed*, not of the schedule.
//!
//! Three properties, per the E17 design:
//! * same `FaultPlan` seed → identical retry/recovery/skip counts and
//!   identical fired-fault tallies, even across different thread counts
//!   and scheduling policies;
//! * a fault-injected, ABFT-recovered Cholesky produces a factor
//!   **bitwise identical** to the fault-free run (snapshot/restore +
//!   deterministic kernels), and solves within the HPL acceptance bound;
//! * the simulated backoff clock is part of the deterministic story.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use xsc_core::{gen, norms, TileMatrix};
use xsc_dense::cholesky::{lower_from_tiles, solve};
use xsc_dense::resilient::cholesky_resilient_abft;
use xsc_ft::inject::FaultKind;
use xsc_ft::plan::{ChaosKind, FaultPlan};
use xsc_runtime::{
    Backoff, Executor, ExhaustedAction, RecoveryPolicy, ResilienceStats, SchedPolicy,
};

fn kind_for(idx: usize) -> ChaosKind {
    match idx % 4 {
        0 => ChaosKind::Panic,
        1 => ChaosKind::SilentCorrupt(FaultKind::BitFlip),
        2 => ChaosKind::SilentCorrupt(FaultKind::Zero),
        _ => ChaosKind::SilentCorrupt(FaultKind::Scale(1.0 + 1e3)),
    }
}

fn skip_policy() -> RecoveryPolicy {
    // SkipSubtree keeps every outcome schedule-independent even when a
    // task exhausts its budget (Abort's cut-off point is a race).
    RecoveryPolicy::with_max_attempts(6)
        .backoff(Backoff::Jittered {
            base: Duration::from_micros(10),
            factor: 2.0,
            max: Duration::from_millis(1),
        })
        .seed(99)
        .on_exhausted(ExhaustedAction::SkipSubtree)
}

fn counts(s: &ResilienceStats) -> (u64, u64, u64, u64, bool, Duration) {
    (
        s.retries,
        s.recoveries,
        s.permanent_failures,
        s.skipped,
        s.completed(),
        s.simulated_backoff,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn same_plan_seed_same_counts_across_schedules(
        seed in 0u64..10_000,
        kidx in 0usize..4,
        t1 in 1usize..5,
        t2 in 1usize..5,
    ) {
        let a = gen::random_spd::<f64>(64, seed ^ 0xA5A5);
        let plan = || Arc::new(FaultPlan::new(seed, 0.08, kind_for(kidx)));

        let tiles1 = TileMatrix::from_matrix(&a, 16);
        let exec1 = Executor::new(t1, SchedPolicy::CriticalPath);
        let r1 = cholesky_resilient_abft(&tiles1, &exec1, skip_policy(), Some(plan())).unwrap();

        let tiles2 = TileMatrix::from_matrix(&a, 16);
        let exec2 = Executor::new(t2, SchedPolicy::Fifo);
        let r2 = cholesky_resilient_abft(&tiles2, &exec2, skip_policy(), Some(plan())).unwrap();

        let s1 = r1.trace.resilience().unwrap();
        let s2 = r2.trace.resilience().unwrap();
        prop_assert_eq!(counts(s1), counts(s2),
            "stats diverged: [{}] vs [{}]", s1.summary(), s2.summary());
        prop_assert_eq!(r1.detections, r2.detections);
        if s1.completed() {
            let l1 = lower_from_tiles(&tiles1);
            let l2 = lower_from_tiles(&tiles2);
            prop_assert_eq!(l1.max_abs_diff(&l2), 0.0,
                "completed factors must be bitwise identical");
        }
    }

    #[test]
    fn recovered_factor_is_bitwise_equal_to_fault_free(
        seed in 0u64..10_000,
        kidx in 0usize..4,
    ) {
        let a = gen::random_spd::<f64>(64, seed ^ 0x5A5A);
        let b = gen::rhs_for_unit_solution(&a);
        let exec = Executor::new(4, SchedPolicy::CriticalPath);
        // Generous attempt budget: at 5% per attempt the chance a task
        // fails 10 deterministic rolls in a row is ~1e-13, so the chaos
        // run always completes and Abort is never exercised.
        let policy = RecoveryPolicy::with_max_attempts(10);

        let clean = TileMatrix::from_matrix(&a, 16);
        cholesky_resilient_abft(&clean, &exec, policy, None).unwrap();

        let chaos = TileMatrix::from_matrix(&a, 16);
        let plan = Arc::new(FaultPlan::new(seed, 0.05, kind_for(kidx)));
        let run = cholesky_resilient_abft(&chaos, &exec, policy, Some(plan)).unwrap();
        let stats = run.trace.resilience().unwrap();
        prop_assert!(stats.completed(), "{}", stats.summary());

        let lf = lower_from_tiles(&clean);
        let lc = lower_from_tiles(&chaos);
        prop_assert_eq!(lf.max_abs_diff(&lc), 0.0,
            "recovery must be bitwise transparent ({} retries)", stats.retries);

        let mut x = b.clone();
        solve(&chaos, &mut x);
        let r = norms::hpl_scaled_residual(&a, &x, &b);
        prop_assert!(r < 16.0, "HPL residual {} after recovery", r);
    }

    #[test]
    fn fired_fault_tallies_replay_exactly(
        seed in 0u64..10_000,
        kidx in 0usize..4,
        rate_pct in 1u32..12,
    ) {
        let a = gen::random_spd::<f64>(48, seed);
        let rate = f64::from(rate_pct) / 100.0;
        let run_once = || {
            let tiles = TileMatrix::from_matrix(&a, 12);
            let exec = Executor::new(3, SchedPolicy::CriticalPath);
            let plan = Arc::new(FaultPlan::new(seed, rate, kind_for(kidx)));
            let run = cholesky_resilient_abft(&tiles, &exec, skip_policy(), Some(Arc::clone(&plan)))
                .unwrap();
            (plan.fired(), run.detections,
             counts(run.trace.resilience().unwrap()))
        };
        prop_assert_eq!(run_once(), run_once());
    }
}
