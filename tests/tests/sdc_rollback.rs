//! Property tests for the SDC-resilient Krylov stack: checkpoint
//! round-trips must be bit-exact on every sparse format, and a protected
//! solve that rolled back must still land on a genuinely converged answer
//! — while staying bit-identical to the plain solver whenever no fault
//! fires.

use proptest::prelude::*;
use xsc_ft::inject::FaultKind;
use xsc_ft::sdc::{protected_pcg, MemFaultPlan, ProtectConfig, SolverCheckpoint};
use xsc_runtime::RecoveryPolicy;
use xsc_sparse::cg::{pcg, Identity};
use xsc_sparse::stencil::{build_matrix, build_rhs, Geometry};
use xsc_sparse::{FormatMatrix, SparseFormat, SparseOps};

fn format_from_index(i: usize) -> SparseFormat {
    let all = SparseFormat::all();
    all[i % all.len()]
}

/// Deterministic but arbitrary-looking vector data derived from a seed.
fn synth_vec(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let h = (seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15))
                .wrapping_mul(0xd1b54a32d192ed03);
            ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) * 4.0 - 2.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Capture → restore reproduces every buffer and scalar to the last
    /// bit, for arbitrary state and on every storage format's value slab.
    #[test]
    fn checkpoint_roundtrip_is_bit_exact_on_every_format(
        g in 3usize..7,
        fmt_idx in 0usize..3,
        seed in 0u64..1000,
        iteration in 0usize..100,
    ) {
        let fmt = format_from_index(fmt_idx);
        let a = build_matrix(Geometry::new(g, g, g));
        let mut m = FormatMatrix::convert(a, fmt).unwrap();
        let n = m.nrows();

        let x = synth_vec(n, seed);
        let r = synth_vec(n, seed ^ 1);
        let p = synth_vec(n, seed ^ 2);
        let z = synth_vec(n, seed ^ 3);
        let rz = synth_vec(1, seed ^ 4)[0];
        let ck = SolverCheckpoint::capture(iteration, &x, &r, &p, &z, rz, iteration + 1);

        // The matrix value slab round-trips bit-exactly too (the rollback
        // path restores it from the pristine snapshot the same way).
        let pristine = m.values().to_vec();
        let k = seed as usize % pristine.len();
        m.values_mut()[k] = f64::from_bits(m.values()[k].to_bits() ^ (1u64 << 61));
        m.values_mut().copy_from_slice(&pristine);
        prop_assert_eq!(m.values(), &pristine[..], "{}: value slab must restore bitwise", fmt);

        let mut x2 = vec![0.0; n];
        let mut r2 = vec![0.0; n];
        let mut p2 = vec![0.0; n];
        let mut z2 = vec![0.0; n];
        let (it, rz2, hl) = ck.restore(&mut x2, &mut r2, &mut p2, &mut z2);
        prop_assert_eq!(it, iteration);
        prop_assert_eq!(hl, iteration + 1);
        prop_assert!(rz2.to_bits() == rz.to_bits());
        prop_assert_eq!(&x2, &x);
        prop_assert_eq!(&r2, &r);
        prop_assert_eq!(&p2, &p);
        prop_assert_eq!(&z2, &z);
    }

    /// With the fault rate at zero the protected loop is a bit-identical
    /// re-spelling of plain PCG, on every format, for arbitrary seeds,
    /// checkpoint cadences, and drift cadences.
    #[test]
    fn fault_free_protected_solve_is_bit_identical_to_pcg(
        g in 4usize..8,
        fmt_idx in 0usize..3,
        seed in 0u64..1000,
        ckpt in 1usize..9,
        drift in 1usize..5,
    ) {
        let fmt = format_from_index(fmt_idx);
        let a_csr = build_matrix(Geometry::new(g, g, g));
        let (b, _) = build_rhs(&a_csr);
        let a_ref = FormatMatrix::convert(a_csr.clone(), fmt).unwrap();
        let mut a = FormatMatrix::convert(a_csr, fmt).unwrap();

        let mut x_ref = vec![0.0; b.len()];
        let reference = pcg(&a_ref, &b, &mut x_ref, 80, 1e-9, &Identity);

        let cfg = ProtectConfig {
            checkpoint_interval: ckpt,
            drift_check_interval: drift,
            ..ProtectConfig::default()
        };
        let plan = MemFaultPlan::new(seed, 0.0, FaultKind::BitFlip);
        let mut x = vec![0.0; b.len()];
        let report = protected_pcg(
            &mut a, &b, &mut x, 80, 1e-9, &Identity, &plan, &cfg, &RecoveryPolicy::default(),
        );
        prop_assert_eq!(&x, &x_ref, "{}: iterates diverged", fmt);
        prop_assert_eq!(&report.residual_history, &reference.residual_history);
        prop_assert!(report.detections.is_empty(), "{}: false positive", fmt);
        prop_assert_eq!(report.replayed_iterations, 0);
    }

    /// Under forced catastrophic faults the protected solve rolls back and
    /// still converges to a *validated* answer: the recomputed final
    /// residual meets the tolerance, the matrix ends bit-identical to its
    /// pristine values whenever the last fault was rolled back, and the
    /// whole run replays byte-for-byte.
    #[test]
    fn rollback_replay_converges_and_is_reproducible(
        fmt_idx in 0usize..3,
        seed in 0u64..200,
    ) {
        let fmt = format_from_index(fmt_idx);
        let a_csr = build_matrix(Geometry::new(6, 6, 6));
        let (b, _) = build_rhs(&a_csr);
        let plan = MemFaultPlan::new(seed, 0.2, FaultKind::Stuck(1e28));
        let cfg = ProtectConfig {
            checkpoint_interval: 2,
            drift_check_interval: 1,
            ..ProtectConfig::default()
        };
        let policy = RecoveryPolicy::with_max_attempts(25);

        let run = || {
            let mut a = FormatMatrix::convert(a_csr.clone(), fmt).unwrap();
            let mut x = vec![0.0; b.len()];
            let rep = protected_pcg(
                &mut a, &b, &mut x, 300, 1e-8, &Identity, &plan, &cfg, &policy,
            );
            (x, rep)
        };
        let (x1, rep1) = run();
        let (x2, rep2) = run();

        prop_assert!(rep1.outcome.converged(), "{}: {:?}", fmt, rep1.outcome);
        prop_assert!(
            rep1.final_true_residual <= 1e-7,
            "{}: claimed convergence is not genuine: {:.3e}",
            fmt, rep1.final_true_residual
        );
        if !rep1.injections.is_empty() {
            prop_assert!(!rep1.detections.is_empty(),
                "{}: 1e28 corruptions must be detected", fmt);
        }
        // Byte-reproducibility of the full rollback-replay trajectory.
        prop_assert_eq!(&x1, &x2);
        prop_assert_eq!(&rep1.injections, &rep2.injections);
        prop_assert_eq!(&rep1.detections, &rep2.detections);
        prop_assert_eq!(&rep1.residual_history, &rep2.residual_history);
        prop_assert_eq!(rep1.executed_iterations, rep2.executed_iterations);
        prop_assert_eq!(rep1.simulated_backoff, rep2.simulated_backoff);
    }
}
