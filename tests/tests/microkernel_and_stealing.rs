//! Cross-crate bit-identity suites for PR 8's two performance paths:
//!
//! 1. **Micro-kernel identity** — every [`MicroKernel`] variant compiled into
//!    this binary and runnable on this CPU must produce *bitwise* identical
//!    GEMM results to the scalar reference, including on boundary-straddling
//!    shapes (`m`/`n` not multiples of `MR`/`NR`, `k == 0`) where the packed
//!    panels carry zero padding.
//! 2. **Steal determinism** — the work-stealing executor must produce
//!    bitwise identical numerical results for the same task graph at any
//!    worker count, under every scheduling policy.
//!
//! Compile with `--features simd` to exercise the AVX2/AVX-512 kernels;
//! without it the suites still run (scalar-only) and pin the invariants.

use proptest::prelude::*;
use xsc_core::gemm::{gemm_with_opts, Transpose, MR, NR};
use xsc_core::{factor, gen, GemmParams, Matrix, MicroKernel, TileMatrix};
use xsc_dense::{cholesky, lu};
use xsc_runtime::{Executor, SchedPolicy};

/// FNV-1a fold over the raw bit patterns of a matrix: collisions aside,
/// equal checksums mean bitwise-equal results.
fn bitwise_checksum(m: &Matrix<f64>) -> u64 {
    m.as_slice().iter().fold(0xcbf29ce484222325u64, |h, x| {
        h.wrapping_mul(0x100000001b3).wrapping_add(x.to_bits())
    })
}

/// Runs one GEMM under (`params`, `kernel`) and returns every output bit.
fn gemm_bits(
    m: usize,
    k: usize,
    n: usize,
    seed: u64,
    params: GemmParams,
    kernel: MicroKernel,
) -> Vec<u64> {
    let a = gen::random_matrix::<f64>(m, k, seed);
    let b = gen::random_matrix::<f64>(k, n, seed.wrapping_add(1));
    let mut c = gen::random_matrix::<f64>(m, n, seed.wrapping_add(2));
    gemm_with_opts(
        Transpose::No,
        Transpose::No,
        1.25,
        &a,
        &b,
        -0.75,
        &mut c,
        params,
        kernel,
    );
    c.as_slice().iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// SIMD micro-kernels are bitwise identical to scalar on shapes chosen
    /// to straddle the `MR x NR` register-tile boundary: `m = q*MR + r` with
    /// `r != 0`, `n = q*NR + r` with `r != 0`, and `k` ranging down to 0
    /// (pure `beta*C` scaling). Blocking parameters are drawn small so a
    /// single test case crosses several `MC`/`KC`/`NC` panel edges too.
    #[test]
    fn simd_matches_scalar_bitwise_on_boundary_shapes(
        mq in 0usize..4,
        mr in 1usize..MR, // m deliberately NOT a multiple of MR
        nq in 0usize..4,
        nr in 1usize..NR, // n deliberately NOT a multiple of NR
        k in 0usize..40,  // includes k == 0
        seed in 0u64..1000,
        mc in 1usize..4,
        kc in 1usize..4,
        nc in 1usize..4,
    ) {
        let m = mq * MR + mr;
        let n = nq * NR + nr;
        let params = GemmParams { mc: mc * MR, kc: kc * 8, nc: nc * NR };
        let reference = gemm_bits(m, k, n, seed, params, MicroKernel::Scalar);
        for kernel in MicroKernel::available() {
            let got = gemm_bits(m, k, n, seed, params, kernel);
            prop_assert_eq!(
                &got, &reference,
                "micro-kernel {} diverged from scalar at m={} k={} n={}",
                kernel, m, k, n
            );
        }
    }
}

/// The same tiled Cholesky DAG — affinity-tagged tasks, every policy —
/// yields bitwise identical factors at every worker count. Worker counts
/// above 1 exercise stealing; count 1 pins the PR-5 sequential order.
#[test]
fn stolen_cholesky_is_bitwise_identical_across_worker_counts() {
    let n = 96;
    let nb = 16;
    let a = gen::random_spd::<f64>(n, 77);
    for policy in [
        SchedPolicy::Fifo,
        SchedPolicy::CriticalPath,
        SchedPolicy::Explicit,
    ] {
        let mut checksums = Vec::new();
        for threads in [1usize, 2, 3, 4, 8] {
            let tiles = TileMatrix::from_matrix(&a, nb);
            let exec = Executor::new(threads, policy);
            cholesky::cholesky_dag(&tiles, &exec).unwrap();
            checksums.push((
                threads,
                bitwise_checksum(&cholesky::lower_from_tiles(&tiles)),
            ));
        }
        let (_, first) = checksums[0];
        for &(threads, sum) in &checksums {
            assert_eq!(
                sum, first,
                "{policy:?}: {threads}-worker Cholesky diverged from 1-worker"
            );
        }
    }
}

/// Same contract for the tile LU DAG: every worker count yields the same
/// bits as the 1-worker run (stealing changes *when* tasks run, never what
/// they compute), and the result tracks the sequential reference to
/// rounding (the tile algorithm sums in a different order, so bitwise
/// equality across *algorithms* is not expected).
#[test]
fn stolen_lu_is_bitwise_identical_across_worker_counts() {
    let n = 80;
    let nb = 16;
    let a = gen::diag_dominant::<f64>(n, 9);

    let mut reference = a.clone();
    factor::getrf_nopiv(&mut reference).unwrap();

    let mut first = None;
    for threads in [1usize, 2, 4, 8] {
        let tiles = TileMatrix::from_matrix(&a, nb);
        let exec = Executor::new(threads, SchedPolicy::CriticalPath);
        lu::lu_nopiv_dag(&tiles, &exec).unwrap();
        let got = tiles.to_matrix();
        assert!(
            got.approx_eq(&reference, 1e-7),
            "tile LU drifted from the sequential reference: {}",
            got.max_abs_diff(&reference)
        );
        let sum = bitwise_checksum(&got);
        match first {
            None => first = Some(sum),
            Some(f) => assert_eq!(
                sum, f,
                "{threads}-worker tile LU diverged from the 1-worker bits"
            ),
        }
    }
}

/// The global micro-kernel override changes speed, never results: routing
/// the whole Cholesky DAG through each variant produces identical bits.
#[test]
fn global_microkernel_override_preserves_dag_results() {
    let n = 64;
    let a = gen::random_spd::<f64>(n, 5);
    let mut checksums = Vec::new();
    for kernel in MicroKernel::available() {
        xsc_core::microkernel::set_global_microkernel(kernel);
        let tiles = TileMatrix::from_matrix(&a, 16);
        let exec = Executor::new(4, SchedPolicy::CriticalPath);
        cholesky::cholesky_dag(&tiles, &exec).unwrap();
        checksums.push((
            kernel,
            bitwise_checksum(&cholesky::lower_from_tiles(&tiles)),
        ));
    }
    xsc_core::microkernel::clear_global_microkernel();
    let (_, first) = checksums[0];
    for &(kernel, sum) in &checksums {
        assert_eq!(sum, first, "variant {kernel} changed DAG Cholesky bits");
    }
}
