//! Cross-format agreement for the bandwidth-lean sparse engine: `Csr32`
//! and SELL-C-σ must reproduce the `usize` CSR kernels bit for bit on
//! arbitrary stencil-patterned diagonally dominant matrices — that is the
//! contract that lets HPCG swap formats without changing a single iterate.

use proptest::prelude::*;
use xsc_sparse::coloring::{color_classes, colored_symgs, greedy_coloring};
use xsc_sparse::stencil::{build_matrix, Geometry};
use xsc_sparse::symgs::symgs;
use xsc_sparse::{run_hpcg_fmt, Csr32, CsrMatrix, SellCSigma, SparseFormat};

/// A 27-point-stencil-patterned matrix with pseudo-random (seeded)
/// off-diagonal values and a diagonal strong enough for Gauss–Seidel.
fn random_stencil(nx: usize, ny: usize, nz: usize, seed: u64) -> CsrMatrix<f64> {
    let pattern = build_matrix(Geometry::new(nx, ny, nz));
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = move || {
        // xorshift64*: deterministic values in (-1, 1).
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let u = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
        (u >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    };
    let n = pattern.nrows();
    let mut triplets = Vec::new();
    for i in 0..n {
        let (cols, _) = pattern.row(i);
        let mut offdiag_sum = 0.0;
        for &j in cols {
            if j != i {
                let v = next();
                offdiag_sum += v.abs();
                triplets.push((i, j, v));
            }
        }
        triplets.push((i, i, offdiag_sum + 1.0 + next().abs()));
    }
    CsrMatrix::from_triplets(n, n, triplets)
}

fn random_vec(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            (((i as u64).wrapping_mul(2654435761).wrapping_add(seed) % 1000) as f64) / 500.0 - 1.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn spmv_and_residual_agree_across_formats(
        nx in 2usize..6,
        ny in 2usize..6,
        nz in 2usize..6,
        seed in 0u64..1000,
        c_pow in 0u32..4,
        mult in 1usize..5,
    ) {
        let a = random_stencil(nx, ny, nz, seed);
        let n = a.nrows();
        let c = 1usize << c_pow;
        let a32 = Csr32::try_from(&a).unwrap();
        let sell = SellCSigma::from_csr(&a, c, c * mult).unwrap();
        prop_assert_eq!(sell.nnz(), a.nnz());

        let x = random_vec(n, seed);
        let b = random_vec(n, seed.wrapping_add(7));

        let mut y_ref = vec![0.0; n];
        a.spmv(&x, &mut y_ref);
        for (name, y) in [
            ("csr32 spmv", { let mut y = vec![0.0; n]; a32.spmv(&x, &mut y); y }),
            ("csr32 spmv_par", { let mut y = vec![0.0; n]; a32.spmv_par(&x, &mut y); y }),
            ("sell spmv", { let mut y = vec![0.0; n]; sell.spmv(&x, &mut y); y }),
            ("sell spmv_par", { let mut y = vec![0.0; n]; sell.spmv_par(&x, &mut y); y }),
        ] {
            // Same per-row fold order everywhere, so agreement is bitwise —
            // far inside the 1e-12 the solver actually needs.
            prop_assert_eq!(&y, &y_ref, "{} diverged", name);
        }

        let mut r_ref = vec![0.0; n];
        a.fused_residual(&x, &b, &mut r_ref);
        let mut r32 = vec![0.0; n];
        a32.fused_residual(&x, &b, &mut r32);
        prop_assert_eq!(&r32, &r_ref);
        let mut rs = vec![0.0; n];
        sell.fused_residual(&x, &b, &mut rs);
        prop_assert_eq!(&rs, &r_ref);
    }

    #[test]
    fn symgs_agrees_across_formats(
        nx in 2usize..5,
        ny in 2usize..5,
        nz in 2usize..5,
        seed in 0u64..1000,
    ) {
        let a = random_stencil(nx, ny, nz, seed);
        let n = a.nrows();
        let a32 = Csr32::try_from(&a).unwrap();
        let sell = SellCSigma::try_from(&a).unwrap();
        let b = random_vec(n, seed.wrapping_add(3));

        // Natural-order sweep.
        let mut x_ref = random_vec(n, seed.wrapping_add(11));
        let mut x32 = x_ref.clone();
        let mut xs = x_ref.clone();
        for _ in 0..3 {
            symgs(&a, &b, &mut x_ref);
            a32.symgs(&b, &mut x32);
            sell.symgs(&b, &mut xs);
        }
        prop_assert_eq!(&x32, &x_ref);
        prop_assert_eq!(&xs, &x_ref);

        // Multi-color parallel sweep: same classes, same update order.
        let classes = color_classes(&greedy_coloring(&a));
        let mut c_ref = random_vec(n, seed.wrapping_add(13));
        let mut c32 = c_ref.clone();
        let mut cs = c_ref.clone();
        for _ in 0..3 {
            colored_symgs(&a, &classes, &b, &mut c_ref);
            a32.colored_symgs(&classes, &b, &mut c32);
            sell.colored_symgs(&classes, &b, &mut cs);
        }
        prop_assert_eq!(&c32, &c_ref);
        prop_assert_eq!(&cs, &c_ref);
    }
}

#[test]
fn hpcg_histories_are_identical_across_formats() {
    let g = Geometry::new(8, 8, 8);
    let base = run_hpcg_fmt(g, 3, 8, SparseFormat::CsrUsize);
    for fmt in [SparseFormat::Csr32, SparseFormat::SellCSigma] {
        let r = run_hpcg_fmt(g, 3, 8, fmt);
        assert_eq!(r.iterations, base.iterations, "{fmt}");
        assert_eq!(r.residual_history, base.residual_history, "{fmt}");
    }
}

#[test]
fn oversized_matrices_are_rejected_not_truncated() {
    // More columns than u32 can index: conversion must refuse, not wrap.
    let wide = CsrMatrix::<f64>::from_triplets(1, u32::MAX as usize + 2, vec![]);
    let err = Csr32::try_from(&wide).unwrap_err();
    assert!(err.to_string().contains("truncate"), "{err}");
    assert!(SellCSigma::try_from(&wide).is_err());
}
