//! Property tests for the `xsc-serve` front-end: validation is the *only*
//! fallible step (malformed jobs never reach the queue), the admission
//! queue drains in a total deterministic order, and the coalescer is
//! numerically transparent (batched launches change launch count, never
//! answer bits).

use proptest::prelude::*;
use xsc_serve::{
    execute_launch, next_launch, AdmissionQueue, CoalescePolicy, JobSpec, Priority, QueueConfig,
    Request, RequestError, MAX_DENSE_N, MAX_GRID, MAX_SOLVE_ITERS, MAX_TENANT_LEN, MAX_TINY_DIM,
};

fn priority_from(idx: u32) -> Priority {
    match idx % 3 {
        0 => Priority::Batch,
        1 => Priority::Normal,
        _ => Priority::Interactive,
    }
}

/// How many times a `grid`-edge cube can halve while staying coarsenable —
/// an independent reimplementation of the validator's reachability rule.
fn model_depth(grid: usize) -> usize {
    let mut g = grid;
    let mut depth = 1;
    while g >= 4 && g.is_multiple_of(2) {
        g /= 2;
        depth += 1;
    }
    depth
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- validation: every malformed job bounces at construction -------

    #[test]
    fn tiny_dims_validate_exactly_in_range(dim in 0usize..3 * MAX_TINY_DIM) {
        let r = Request::new("t0", Priority::Normal, JobSpec::TinySolve { dim, seed: 1 });
        if (1..=MAX_TINY_DIM).contains(&dim) {
            prop_assert!(r.is_ok());
        } else {
            prop_assert_eq!(r.unwrap_err(), RequestError::BadTinyDim { dim });
        }
    }

    #[test]
    fn dense_dims_validate_exactly_in_range(n in 0usize..2 * MAX_DENSE_N) {
        let r = Request::new("t0", Priority::Normal, JobSpec::DenseFactor { n, seed: 1 });
        if (1..=MAX_DENSE_N).contains(&n) {
            prop_assert!(r.is_ok());
        } else {
            prop_assert_eq!(r.unwrap_err(), RequestError::BadDenseDim { n });
        }
    }

    #[test]
    fn sparse_specs_validate_exactly(
        grid in 0usize..2 * MAX_GRID,
        levels in 0usize..8,
        tol_micros in 0i64..2_000_000,
        max_iters in 0usize..2 * MAX_SOLVE_ITERS,
    ) {
        // Derive the tolerance from an integer so the strategy space stays
        // integral: 0.0, values inside (0, 1), 1.0, and values above 1.
        let tol = tol_micros as f64 / 1e6;
        let spec = JobSpec::SparseSolve { grid, levels, tol, max_iters };
        let r = Request::new("t0", Priority::Normal, spec);
        let grid_ok = (2..=MAX_GRID).contains(&grid);
        let levels_ok = levels >= 1 && levels <= model_depth(grid);
        let tol_ok = tol > 0.0 && tol < 1.0;
        let iters_ok = (1..=MAX_SOLVE_ITERS).contains(&max_iters);
        // The validator checks in a fixed order; mirror only acceptance.
        prop_assert_eq!(r.is_ok(), grid_ok && levels_ok && tol_ok && iters_ok,
            "grid {} levels {} tol {} iters {}", grid, levels, tol, max_iters);
    }

    #[test]
    fn tenant_names_validate_exactly(raw in proptest::collection::vec(0u32..128, 0..2 * MAX_TENANT_LEN)) {
        // Map code points into a mix of legal and illegal tenant chars.
        let tenant: String = raw.iter().map(|&c| char::from_u32(c).unwrap_or('?')).collect();
        let r = Request::new(tenant.clone(), Priority::Normal, JobSpec::TinySolve { dim: 4, seed: 1 });
        let ok = !tenant.is_empty()
            && tenant.chars().count() <= MAX_TENANT_LEN
            && tenant.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_');
        prop_assert_eq!(r.is_ok(), ok, "tenant {:?}", tenant);
    }

    // ---- queue: drain order is a pure function of the submissions ------

    #[test]
    fn drain_order_is_priority_then_fifo_under_interleaved_pops(
        jobs in proptest::collection::vec((0u32..3, 1usize..=8), 1..40),
        pop_every in 1usize..6,
    ) {
        // Submit all jobs, popping after every `pop_every` submissions —
        // an arbitrary interleaving of producers and the drain loop. The
        // concatenated pops must equal the stable (priority desc,
        // admission seq asc) sort of the same job list, no matter where
        // the pops landed.
        let cfg = QueueConfig { capacity: jobs.len(), per_tenant_quota: jobs.len() };
        let mut interleaved = AdmissionQueue::new(cfg);
        let mut batch_only = AdmissionQueue::new(cfg);
        let mut drained = Vec::new();
        for (i, (p, dim)) in jobs.iter().enumerate() {
            let req = Request::new(
                "tenant-a",
                priority_from(*p),
                JobSpec::TinySolve { dim: *dim, seed: i as u64 },
            ).expect("generator emits only valid requests");
            interleaved.submit(req.clone()).expect("sized to fit");
            batch_only.submit(req).expect("sized to fit");
            if (i + 1) % pop_every == 0 {
                if let Some(job) = interleaved.pop() {
                    drained.push(job);
                }
            }
        }
        while let Some(job) = interleaved.pop() {
            drained.push(job);
        }
        prop_assert_eq!(drained.len(), jobs.len());

        // Model: stable sort of admission order by descending class. The
        // ids assigned by both queues are identical (admission order), so
        // comparing ids checks the whole drain order.
        let mut batch_drained = Vec::new();
        while let Some(job) = batch_only.pop() {
            batch_drained.push(job);
        }
        let mut model: Vec<(u64, u64)> = batch_drained
            .iter()
            .map(|j| (j.id, j.request.priority().level()))
            .collect();
        model.sort_by_key(|&(id, level)| (u64::MAX - level, id));

        // Interleaved pops can only run *ahead* of later submissions, so
        // compare class-by-class FIFO order instead of raw position: in
        // every priority class the ids must come out ascending, in both
        // drains, and both drains must contain the same id multiset.
        for class in 0..3u64 {
            let a: Vec<u64> = drained.iter()
                .filter(|j| j.request.priority().level() == class)
                .map(|j| j.id).collect();
            let mut sorted = a.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&a, &sorted, "class {} not FIFO in interleaved drain", class);
        }
        let batch_ids: Vec<u64> = batch_drained.iter().map(|j| j.id).collect();
        let model_ids: Vec<u64> = model.iter().map(|&(id, _)| id).collect();
        prop_assert_eq!(batch_ids, model_ids, "batch drain must equal the stable priority sort");

        // Replaying the identical interleaving drains identically.
        let mut replayed = AdmissionQueue::new(cfg);
        let mut drained2 = Vec::new();
        for (i, (p, dim)) in jobs.iter().enumerate() {
            let req = Request::new(
                "tenant-a",
                priority_from(*p),
                JobSpec::TinySolve { dim: *dim, seed: i as u64 },
            ).expect("generator emits only valid requests");
            replayed.submit(req).expect("sized to fit");
            if (i + 1) % pop_every == 0 {
                if let Some(job) = replayed.pop() {
                    drained2.push(job);
                }
            }
        }
        while let Some(job) = replayed.pop() {
            drained2.push(job);
        }
        prop_assert_eq!(drained, drained2, "same interleaving must drain identically");
    }

    // ---- coalescer: batched launches never change answer bits ----------

    #[test]
    fn coalesced_answers_are_bit_identical_to_uncoalesced(
        jobs in proptest::collection::vec((0u32..3, 2usize..=12, 0u64..1000), 1..24),
        max_batch in 2usize..32,
    ) {
        let cfg = QueueConfig { capacity: jobs.len(), per_tenant_quota: jobs.len() };
        let mut qa = AdmissionQueue::new(cfg);
        let mut qb = AdmissionQueue::new(cfg);
        for (p, dim, seed) in &jobs {
            let req = Request::new(
                "tenant-a",
                priority_from(*p),
                JobSpec::TinySolve { dim: *dim, seed: *seed },
            ).expect("generator emits only valid requests");
            qa.submit(req.clone()).expect("sized to fit");
            qb.submit(req).expect("sized to fit");
        }

        let coalesced = CoalescePolicy { enabled: true, max_batch };
        let uncoalesced = CoalescePolicy { enabled: false, max_batch };
        let mut got = Vec::new();
        while let Some(launch) = next_launch(&mut qa, &coalesced) {
            prop_assert!(launch.width() <= max_batch, "launch wider than policy");
            got.extend(execute_launch(&launch));
        }
        let mut want = Vec::new();
        while let Some(launch) = next_launch(&mut qb, &uncoalesced) {
            prop_assert_eq!(launch.width(), 1, "disabled coalescer must launch singles");
            want.extend(execute_launch(&launch));
        }
        got.sort_by_key(|o| o.id);
        want.sort_by_key(|o| o.id);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.id, w.id);
            prop_assert_eq!(
                g.checksum.to_bits(), w.checksum.to_bits(),
                "job {} answer changed under coalescing", g.id
            );
        }
    }
}
