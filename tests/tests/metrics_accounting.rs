//! Cross-crate checks of the `xsc-metrics` data-movement accounting: the
//! instrumented kernels must report **identical** flop/byte totals across
//! identical runs (counters are analytic, not sampled), and the measured
//! numbers must reproduce the keynote's dense-vs-sparse intensity gap.

use std::sync::Mutex;
use xsc_core::gemm::{gemm, Transpose};
use xsc_core::{gen, Matrix};
use xsc_metrics::KernelCounters;
use xsc_sparse::stencil::{build_matrix, build_rhs};
use xsc_sparse::{run_hpcg, Geometry};

/// The metrics registry is process-global; tests in this binary take this
/// lock so one test's reset cannot clobber another's accumulation.
static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

/// One representative instrumented workload: a dense gemm, an HPL-like
/// solve, and an HPCG-like solve.
fn workload() -> Vec<(&'static str, KernelCounters)> {
    let s = 96;
    let a = gen::random_matrix::<f64>(s, s, 1);
    let b = gen::random_matrix::<f64>(s, s, 2);
    let mut c = Matrix::<f64>::zeros(s, s);
    gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, &mut c);
    xsc_dense::hpl::run_hpl(128, 32, 7).expect("hpl run");
    run_hpcg(Geometry::new(16, 16, 16), 3, 5);
    xsc_metrics::snapshot()
}

/// Strip the wall-clock field, which legitimately differs between runs.
fn untimed(snap: &[(&'static str, KernelCounters)]) -> Vec<(&'static str, KernelCounters)> {
    snap.iter()
        .map(|&(k, c)| (k, KernelCounters { ns: 0, ..c }))
        .collect()
}

#[test]
fn identical_runs_report_identical_flop_byte_totals() {
    let _guard = REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    xsc_metrics::reset();
    let first = workload();
    xsc_metrics::reset();
    let second = workload();
    assert!(
        !first.is_empty(),
        "instrumented kernels should have recorded counters"
    );
    assert_eq!(
        untimed(&first),
        untimed(&second),
        "flop/byte totals must be deterministic across identical runs"
    );
    for (k, c) in &first {
        assert!(c.invocations > 0, "{k} recorded without invocations");
    }
}

#[test]
fn measured_intensity_gap_matches_the_keynote() {
    let _guard = REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (_, delta) = xsc_metrics::measure(|| {
        let s = 128;
        let a = gen::random_matrix::<f64>(s, s, 1);
        let b = gen::random_matrix::<f64>(s, s, 2);
        let mut c = Matrix::<f64>::zeros(s, s);
        gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, &mut c);

        let g = Geometry::new(24, 24, 24);
        let m = build_matrix(g);
        let (_, rhs) = build_rhs(&m);
        let mut y = vec![0.0; m.nrows()];
        m.spmv(&rhs, &mut y);
    });
    let get = |name: &str| {
        delta
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, c)| *c)
            .expect("kernel recorded")
    };
    let ge = get("gemm");
    let sp = get("spmv");
    assert!(
        ge.intensity() >= 10.0 * sp.intensity(),
        "dense gemm intensity ({:.2} f/B) should dwarf sparse spmv ({:.2} f/B)",
        ge.intensity(),
        sp.intensity()
    );
    // SpMV moves ~(2 values + 1 index + 1 gathered element) per nonzero;
    // its intensity must sit below 1 flop per 8-byte word.
    assert!(sp.intensity() < 0.125);
}
