//! Cross-crate pipelines combining fault tolerance, mixed precision, and
//! the sparse solvers.

use xsc_core::{gen, norms};
use xsc_ft::abft::abft_gemm;
use xsc_ft::checkpoint::{resilient_cg, Recovery};
use xsc_ft::inject::{FaultInjector, FaultKind};
use xsc_ft::AbftOutcome;
use xsc_precision::ir::lu_ir_solve;
use xsc_precision::Half;
use xsc_sparse::stencil::{build_matrix, build_rhs, Geometry};
use xsc_sparse::{pcg, Identity};

#[test]
fn abft_protected_matmul_inside_solver_pipeline() {
    // Build normal equations with ABFT-protected GEMM under a fault, then
    // solve them: the repaired product must be good enough for Cholesky.
    let m = 48;
    let n = 24;
    let a = gen::random_matrix::<f64>(m, n, 1);
    let at = a.transpose();
    let mut inj = FaultInjector::new(1.0, FaultKind::BitFlip, 2);
    let (gram, outcome) = abft_gemm(&at, &a, |c| {
        let v = c.get(3, 7);
        c.set(3, 7, inj.corrupt_value(v));
    });
    assert!(matches!(outcome, AbftOutcome::Corrected { .. }));
    // Gram matrix must still be SPD after repair.
    let mut f = gram.clone();
    xsc_core::factor::potrf_blocked(&mut f, 8).expect("repaired Gram matrix is SPD");
}

#[test]
fn mixed_precision_ir_then_verified_by_hpl_residual() {
    let n = 128;
    let a = gen::diag_dominant::<f64>(n, 3);
    let b = gen::rhs_for_unit_solution(&a);
    let (x, rep) = lu_ir_solve::<f32>(&a, &b, 30, None).unwrap();
    assert!(rep.converged);
    // The HPL acceptance criterion is the cross-check.
    assert!(norms::hpl_scaled_residual(&a, &x, &b) < 16.0);
}

#[test]
fn fp16_ir_and_fp32_ir_reach_the_same_answer() {
    let n = 48;
    let a = gen::diag_dominant::<f64>(n, 4);
    let b = gen::rhs_for_unit_solution(&a);
    let (x16, _) = lu_ir_solve::<Half>(&a, &b, 60, None).unwrap();
    let (x32, _) = lu_ir_solve::<f32>(&a, &b, 30, None).unwrap();
    for (p, q) in x16.iter().zip(x32.iter()) {
        assert!((p - q).abs() < 1e-8, "{p} vs {q}");
    }
}

#[test]
fn resilient_cg_matches_plain_pcg_when_fault_free() {
    let g = Geometry::new(6, 6, 6);
    let a = build_matrix(g);
    let (b, _) = build_rhs(&a);

    let mut x_plain = vec![0.0; a.nrows()];
    let plain = pcg(&a, &b, &mut x_plain, 500, 1e-9, &Identity);

    let mut inj = FaultInjector::new(0.0, FaultKind::BitFlip, 5);
    let resilient = resilient_cg(&a, &b, 500, 1e-9, &mut inj, Recovery::Restart, 10, 1e-6);

    assert!(plain.converged && resilient.converged);
    // Same algorithm, same deterministic reductions: iteration counts are
    // close (the resilient driver re-checks the true residual).
    assert!(
        (plain.iterations as i64 - resilient.iterations as i64).unsigned_abs() <= 2,
        "plain {} vs resilient {}",
        plain.iterations,
        resilient.iterations
    );
}

#[test]
fn faulty_cg_still_reaches_true_solution() {
    let g = Geometry::new(6, 6, 8);
    let a = build_matrix(g);
    let (mut b, _) = build_rhs(&a);
    for (i, v) in b.iter_mut().enumerate() {
        *v += ((i * 40503) % 997) as f64 / 997.0 - 0.5;
    }
    let mut inj = FaultInjector::new(0.1, FaultKind::BitFlip, 6);
    let rep = resilient_cg(
        &a,
        &b,
        5000,
        1e-9,
        &mut inj,
        Recovery::Checkpoint { interval: 8 },
        4,
        1e-6,
    );
    assert!(rep.converged, "{rep:?}");
    assert!(rep.final_residual < 1e-8);
}
