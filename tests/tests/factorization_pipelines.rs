//! Cross-crate factorization pipelines: tiled engines against sequential
//! references, RBT feeding no-pivot tiled LU, and QR-based least squares.

use xsc_core::{factor, gen, norms, Matrix, TileMatrix, Transpose};
use xsc_dense::{cholesky, lu, qr, rbt, tsqr};
use xsc_runtime::{Executor, SchedPolicy};

#[test]
fn dag_cholesky_solve_matches_direct_solve() {
    let n = 96;
    let a = gen::random_spd::<f64>(n, 1);
    let b = gen::rhs_for_unit_solution(&a);

    let tiles = TileMatrix::from_matrix(&a, 32);
    let exec = Executor::new(4, SchedPolicy::CriticalPath);
    cholesky::cholesky_dag(&tiles, &exec).unwrap();
    let mut x_dag = b.clone();
    cholesky::solve(&tiles, &mut x_dag);

    let mut f = a.clone();
    factor::potrf_blocked(&mut f, 32).unwrap();
    let mut x_ref = b.clone();
    factor::potrf_solve(&f, &mut x_ref);

    for (p, s) in x_dag.iter().zip(x_ref.iter()) {
        assert!((p - s).abs() < 1e-9);
    }
}

#[test]
fn rbt_preconditioned_tiled_lu_pipeline() {
    // RBT makes the matrix safe for the *tiled no-pivot* LU — the full
    // pipeline the keynote advocates (randomize, then pivot-free dataflow).
    let n = 64;
    let mut a = gen::random_matrix::<f64>(n, n, 2);
    a.set(0, 0, 0.0); // break plain no-pivot LU
    let b = gen::rhs_for_unit_solution(&a);

    // Transform with butterflies (dense API), then factor the transformed
    // matrix with the tiled dataflow engine.
    let u = rbt::Butterfly::<f64>::random(n, 2, 3);
    let v = rbt::Butterfly::<f64>::random(n, 2, 4);
    let mut t = a.clone();
    u.apply_transpose_left(&mut t);
    v.apply_right(&mut t);

    let tiles = TileMatrix::from_matrix(&t, 16);
    let exec = Executor::new(4, SchedPolicy::CriticalPath);
    lu::lu_nopiv_dag(&tiles, &exec).expect("RBT should have regularized the pivots");

    // Solve (U^T A V) y = U^T b, x = V y.
    let mut y = b.clone();
    u.apply_transpose(&mut y);
    lu::solve_nopiv(&tiles, &mut y);
    v.apply(&mut y);
    assert!(
        norms::relative_residual(&a, &y, &b) < 1e-8,
        "residual {}",
        norms::relative_residual(&a, &y, &b)
    );
}

#[test]
fn tiled_qr_and_tsqr_agree_on_r_magnitudes() {
    let m = 96;
    let n = 32;
    let a = gen::random_matrix::<f64>(m, n, 5);
    let f = qr::qr_seq(TileMatrix::from_matrix(&a, 32)).unwrap();
    let r_tiled = f.r_matrix();
    let res = tsqr::tsqr(&a, 32);
    for i in 0..n {
        for j in i..n {
            assert!(
                (r_tiled.get(i, j).abs() - res.r.get(i, j).abs()).abs() < 1e-9,
                "|R| mismatch at ({i},{j})"
            );
        }
    }
}

#[test]
fn qr_least_squares_beats_normal_equations_on_conditioning() {
    // Classic: QR solves LS stably where explicit normal equations square
    // the condition number.
    let m = 80;
    let n = 8;
    let q = gen::random_orthogonal(m, 6);
    // Build A with geometric singular values 1..1e-7.
    let mut a = Matrix::<f64>::zeros(m, n);
    for j in 0..n {
        let s = 10.0f64.powi(-(j as i32));
        for i in 0..m {
            a.set(i, j, q.get(i, j) * s);
        }
    }
    let x_true: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
    let mut b = vec![0.0; m];
    xsc_core::gemm::gemv(Transpose::No, 1.0, &a, &x_true, 0.0, &mut b);

    let f = qr::qr_seq(TileMatrix::from_matrix(&a, 8)).unwrap();
    let x_qr = f.solve_ls(&b);
    let err: f64 = x_qr
        .iter()
        .zip(x_true.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    assert!(err < 1e-6, "QR LS error {err}");
}

#[test]
fn forkjoin_and_dag_engines_agree_bitwise_per_tile_kernel_order() {
    // Both engines run the same kernel sequence per tile; the results must
    // agree to roundoff regardless of interleaving.
    let n = 80;
    let a = gen::random_spd::<f64>(n, 7);
    let t1 = TileMatrix::from_matrix(&a, 16);
    let t2 = TileMatrix::from_matrix(&a, 16);
    let exec = Executor::new(4, SchedPolicy::Fifo);
    cholesky::cholesky_dag(&t1, &exec).unwrap();
    cholesky::cholesky_forkjoin(&t2).unwrap();
    let m1 = cholesky::lower_from_tiles(&t1);
    let m2 = cholesky::lower_from_tiles(&t2);
    assert!(
        m1.approx_eq(&m2, 0.0),
        "engines diverged: {}",
        m1.max_abs_diff(&m2)
    );
}
