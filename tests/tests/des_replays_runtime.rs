//! The discrete-event simulator replays graphs produced by the *real*
//! runtime builders, and its predictions respect the DAG-theoretic bounds
//! observed in real executions.

use xsc_core::TileMatrix;
use xsc_dense::cholesky;
use xsc_dense::lu;
use xsc_dense::poison::Poison;
use xsc_machine::des::{simulate, DesConfig};

fn cholesky_graph(nt: usize) -> (usize, Vec<(usize, usize)>, Vec<f64>) {
    let a = TileMatrix::<f64>::zeros(nt * 16, nt * 16, 16);
    let mut g = cholesky::build_graph(&a, &Poison::new());
    let edges = g.edge_list();
    let costs: Vec<f64> = g.costs().iter().map(|&c| c as f64).collect();
    (costs.len(), edges, costs)
}

#[test]
fn replayed_cholesky_respects_brent_bounds() {
    let (n, edges, costs) = cholesky_graph(8);
    for workers in [1, 2, 4, 16, 64] {
        let rep = simulate(
            n,
            &edges,
            &costs,
            DesConfig {
                workers,
                comm_delay: 0.0,
            },
        );
        let lower = rep.critical_path.max(rep.total_work / workers as f64);
        assert!(rep.makespan >= lower - 1e-9);
        // List scheduling guarantee: within 2x of optimal.
        assert!(
            rep.makespan <= 2.0 * lower + 1e-9,
            "workers={workers}: {} vs bound {}",
            rep.makespan,
            lower
        );
    }
}

#[test]
fn cholesky_dag_speedup_saturates_at_dag_width() {
    let (n, edges, costs) = cholesky_graph(8);
    let few = simulate(
        n,
        &edges,
        &costs,
        DesConfig {
            workers: 4,
            comm_delay: 0.0,
        },
    );
    let many = simulate(
        n,
        &edges,
        &costs,
        DesConfig {
            workers: 4096,
            comm_delay: 0.0,
        },
    );
    assert!(many.speedup >= few.speedup - 1e-9);
    // Beyond the DAG's parallelism, speedup is capped by work/critical-path.
    let cap = many.total_work / many.critical_path;
    assert!(many.speedup <= cap + 1e-9);
    assert!(
        many.speedup > 0.8 * cap,
        "unbounded workers should approach the DAG-width cap: {} vs {}",
        many.speedup,
        cap
    );
}

#[test]
fn lu_graph_replays_too() {
    let a = TileMatrix::<f64>::zeros(64, 64, 16);
    let mut g = lu::build_graph(&a, &Poison::new());
    let edges = g.edge_list();
    let costs: Vec<f64> = g.costs().iter().map(|&c| c as f64).collect();
    let rep = simulate(
        costs.len(),
        &edges,
        &costs,
        DesConfig {
            workers: 8,
            comm_delay: 0.0,
        },
    );
    assert!(rep.makespan > 0.0);
    assert!(rep.speedup >= 1.0);
}

#[test]
fn real_trace_utilization_bounded_by_des_ideal() {
    // The real runtime (with locking, queueing, memory effects) cannot
    // exceed the idealized simulator's utilization for the same DAG shape
    // by more than measurement noise.
    let nt = 6;
    let a_real = TileMatrix::from_matrix(&xsc_core::gen::random_spd::<f64>(nt * 32, 1), 32);
    let exec = xsc_runtime::Executor::new(2, xsc_runtime::SchedPolicy::CriticalPath);
    let trace = cholesky::cholesky_dag(&a_real, &exec).unwrap();

    let (n, edges, costs) = cholesky_graph(nt);
    let ideal = simulate(
        n,
        &edges,
        &costs,
        DesConfig {
            workers: 2,
            comm_delay: 0.0,
        },
    );
    assert!(trace.utilization() <= 1.0);
    assert!(ideal.utilization <= 1.0);
    // Both should be reasonably high for 2 workers on this DAG.
    assert!(ideal.utilization > 0.5);
}
