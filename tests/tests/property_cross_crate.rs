//! Property-based tests spanning crates: the parallel engines must agree
//! with the sequential references for arbitrary shapes and seeds.

use proptest::prelude::*;
use xsc_core::{factor, gen, norms, TileMatrix};
use xsc_dense::{cholesky, lu, tsqr};
use xsc_precision::ir::lu_ir_solve;
use xsc_runtime::{Executor, SchedPolicy};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn dag_cholesky_equals_blocked_reference(
        n in 8usize..48,
        nb in 4usize..24,
        seed in 0u64..1000,
    ) {
        let a = gen::random_spd::<f64>(n, seed);
        let tiles = TileMatrix::from_matrix(&a, nb);
        let exec = Executor::new(3, SchedPolicy::CriticalPath);
        cholesky::cholesky_dag(&tiles, &exec).unwrap();
        let got = cholesky::lower_from_tiles(&tiles);

        let mut f = a.clone();
        factor::potrf_blocked(&mut f, nb).unwrap();
        for j in 0..n {
            for i in j..n {
                prop_assert!((got.get(i, j) - f.get(i, j)).abs() < 1e-8,
                    "mismatch at ({},{})", i, j);
            }
        }
    }

    #[test]
    fn dag_lu_nopiv_equals_reference(
        n in 8usize..40,
        nb in 4usize..20,
        seed in 0u64..1000,
    ) {
        let a = gen::diag_dominant::<f64>(n, seed);
        let tiles = TileMatrix::from_matrix(&a, nb);
        let exec = Executor::new(3, SchedPolicy::Fifo);
        lu::lu_nopiv_dag(&tiles, &exec).unwrap();
        let got = tiles.to_matrix();

        let mut f = a.clone();
        factor::getrf_nopiv(&mut f).unwrap();
        prop_assert!(got.approx_eq(&f, 1e-7), "diff {}", got.max_abs_diff(&f));
    }

    #[test]
    fn tsqr_gram_identity_holds(
        m in 20usize..120,
        n in 1usize..8,
        blocks in 1usize..6,
        seed in 0u64..1000,
    ) {
        prop_assume!(m >= n);
        let a = gen::random_matrix::<f64>(m, n, seed);
        let res = tsqr::tsqr(&a, (m / blocks).max(n));
        // R^T R == A^T A.
        let mut ga = xsc_core::Matrix::<f64>::zeros(n, n);
        xsc_core::gemm::gemm(xsc_core::Transpose::Yes, xsc_core::Transpose::No,
            1.0, &a, &a, 0.0, &mut ga);
        let mut gr = xsc_core::Matrix::<f64>::zeros(n, n);
        xsc_core::gemm::gemm(xsc_core::Transpose::Yes, xsc_core::Transpose::No,
            1.0, &res.r, &res.r, 0.0, &mut gr);
        prop_assert!(gr.approx_eq(&ga, 1e-8 * m as f64),
            "gram diff {}", gr.max_abs_diff(&ga));
    }

    #[test]
    fn ir_solution_satisfies_hpl_criterion(
        n in 8usize..64,
        seed in 0u64..1000,
    ) {
        let a = gen::diag_dominant::<f64>(n, seed);
        let b = gen::random_vector::<f64>(n, seed.wrapping_add(1));
        let (x, rep) = lu_ir_solve::<f32>(&a, &b, 40, None).unwrap();
        prop_assert!(rep.converged);
        prop_assert!(norms::hpl_scaled_residual(&a, &x, &b) < 16.0);
    }
}
