//! Cross-crate integration tests live in this package's `tests/` directory;
//! the library itself is intentionally empty.
