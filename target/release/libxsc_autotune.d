/root/repo/target/release/libxsc_autotune.rlib: /root/repo/crates/autotune/src/lib.rs
