/root/repo/target/release/libxsc_tests.rlib: /root/repo/tests/src/lib.rs
