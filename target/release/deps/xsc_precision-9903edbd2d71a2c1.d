/root/repo/target/release/deps/xsc_precision-9903edbd2d71a2c1.d: crates/precision/src/lib.rs crates/precision/src/adaptive.rs crates/precision/src/gmres_ir.rs crates/precision/src/half.rs crates/precision/src/ir.rs

/root/repo/target/release/deps/libxsc_precision-9903edbd2d71a2c1.rlib: crates/precision/src/lib.rs crates/precision/src/adaptive.rs crates/precision/src/gmres_ir.rs crates/precision/src/half.rs crates/precision/src/ir.rs

/root/repo/target/release/deps/libxsc_precision-9903edbd2d71a2c1.rmeta: crates/precision/src/lib.rs crates/precision/src/adaptive.rs crates/precision/src/gmres_ir.rs crates/precision/src/half.rs crates/precision/src/ir.rs

crates/precision/src/lib.rs:
crates/precision/src/adaptive.rs:
crates/precision/src/gmres_ir.rs:
crates/precision/src/half.rs:
crates/precision/src/ir.rs:
