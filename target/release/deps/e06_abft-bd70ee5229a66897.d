/root/repo/target/release/deps/e06_abft-bd70ee5229a66897.d: crates/bench/src/bin/e06_abft.rs

/root/repo/target/release/deps/e06_abft-bd70ee5229a66897: crates/bench/src/bin/e06_abft.rs

crates/bench/src/bin/e06_abft.rs:
