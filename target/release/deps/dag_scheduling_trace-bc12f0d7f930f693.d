/root/repo/target/release/deps/dag_scheduling_trace-bc12f0d7f930f693.d: examples/dag_scheduling_trace.rs

/root/repo/target/release/deps/dag_scheduling_trace-bc12f0d7f930f693: examples/dag_scheduling_trace.rs

examples/dag_scheduling_trace.rs:
