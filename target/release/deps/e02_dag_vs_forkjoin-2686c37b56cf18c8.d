/root/repo/target/release/deps/e02_dag_vs_forkjoin-2686c37b56cf18c8.d: crates/bench/src/bin/e02_dag_vs_forkjoin.rs

/root/repo/target/release/deps/e02_dag_vs_forkjoin-2686c37b56cf18c8: crates/bench/src/bin/e02_dag_vs_forkjoin.rs

crates/bench/src/bin/e02_dag_vs_forkjoin.rs:
