/root/repo/target/release/deps/e15_colored_smoother-af9495ab8d23a6df.d: crates/bench/src/bin/e15_colored_smoother.rs

/root/repo/target/release/deps/e15_colored_smoother-af9495ab8d23a6df: crates/bench/src/bin/e15_colored_smoother.rs

crates/bench/src/bin/e15_colored_smoother.rs:
