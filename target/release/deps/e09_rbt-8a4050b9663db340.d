/root/repo/target/release/deps/e09_rbt-8a4050b9663db340.d: crates/bench/src/bin/e09_rbt.rs

/root/repo/target/release/deps/e09_rbt-8a4050b9663db340: crates/bench/src/bin/e09_rbt.rs

crates/bench/src/bin/e09_rbt.rs:
