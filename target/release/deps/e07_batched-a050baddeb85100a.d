/root/repo/target/release/deps/e07_batched-a050baddeb85100a.d: crates/bench/src/bin/e07_batched.rs

/root/repo/target/release/deps/e07_batched-a050baddeb85100a: crates/bench/src/bin/e07_batched.rs

crates/bench/src/bin/e07_batched.rs:
