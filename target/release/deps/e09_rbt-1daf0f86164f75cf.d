/root/repo/target/release/deps/e09_rbt-1daf0f86164f75cf.d: crates/bench/src/bin/e09_rbt.rs

/root/repo/target/release/deps/e09_rbt-1daf0f86164f75cf: crates/bench/src/bin/e09_rbt.rs

crates/bench/src/bin/e09_rbt.rs:
