/root/repo/target/release/deps/e05_energy_table-a48d2a15bf9fcd96.d: crates/bench/src/bin/e05_energy_table.rs

/root/repo/target/release/deps/e05_energy_table-a48d2a15bf9fcd96: crates/bench/src/bin/e05_energy_table.rs

crates/bench/src/bin/e05_energy_table.rs:
