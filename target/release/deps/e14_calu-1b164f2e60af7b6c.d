/root/repo/target/release/deps/e14_calu-1b164f2e60af7b6c.d: crates/bench/src/bin/e14_calu.rs

/root/repo/target/release/deps/e14_calu-1b164f2e60af7b6c: crates/bench/src/bin/e14_calu.rs

crates/bench/src/bin/e14_calu.rs:
