/root/repo/target/release/deps/e08_autotune-9f0f38f5cf11b033.d: crates/bench/src/bin/e08_autotune.rs

/root/repo/target/release/deps/e08_autotune-9f0f38f5cf11b033: crates/bench/src/bin/e08_autotune.rs

crates/bench/src/bin/e08_autotune.rs:
