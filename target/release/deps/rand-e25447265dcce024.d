/root/repo/target/release/deps/rand-e25447265dcce024.d: crates/shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-e25447265dcce024.rlib: crates/shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-e25447265dcce024.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
