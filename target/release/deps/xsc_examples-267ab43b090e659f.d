/root/repo/target/release/deps/xsc_examples-267ab43b090e659f.d: examples/lib.rs

/root/repo/target/release/deps/libxsc_examples-267ab43b090e659f.rlib: examples/lib.rs

/root/repo/target/release/deps/libxsc_examples-267ab43b090e659f.rmeta: examples/lib.rs

examples/lib.rs:
