/root/repo/target/release/deps/e17_chaos_runtime-31ca1ab191a0e9ed.d: crates/bench/src/bin/e17_chaos_runtime.rs

/root/repo/target/release/deps/e17_chaos_runtime-31ca1ab191a0e9ed: crates/bench/src/bin/e17_chaos_runtime.rs

crates/bench/src/bin/e17_chaos_runtime.rs:
