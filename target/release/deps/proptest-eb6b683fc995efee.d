/root/repo/target/release/deps/proptest-eb6b683fc995efee.d: crates/shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-eb6b683fc995efee.rlib: crates/shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-eb6b683fc995efee.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
