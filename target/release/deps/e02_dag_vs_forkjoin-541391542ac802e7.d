/root/repo/target/release/deps/e02_dag_vs_forkjoin-541391542ac802e7.d: crates/bench/src/bin/e02_dag_vs_forkjoin.rs

/root/repo/target/release/deps/e02_dag_vs_forkjoin-541391542ac802e7: crates/bench/src/bin/e02_dag_vs_forkjoin.rs

crates/bench/src/bin/e02_dag_vs_forkjoin.rs:
