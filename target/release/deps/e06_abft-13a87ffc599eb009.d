/root/repo/target/release/deps/e06_abft-13a87ffc599eb009.d: crates/bench/src/bin/e06_abft.rs

/root/repo/target/release/deps/e06_abft-13a87ffc599eb009: crates/bench/src/bin/e06_abft.rs

crates/bench/src/bin/e06_abft.rs:
