/root/repo/target/release/deps/e08_autotune-b63ba08c3808d2e2.d: crates/bench/src/bin/e08_autotune.rs

/root/repo/target/release/deps/e08_autotune-b63ba08c3808d2e2: crates/bench/src/bin/e08_autotune.rs

crates/bench/src/bin/e08_autotune.rs:
