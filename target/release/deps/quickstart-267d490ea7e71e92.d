/root/repo/target/release/deps/quickstart-267d490ea7e71e92.d: examples/quickstart.rs

/root/repo/target/release/deps/quickstart-267d490ea7e71e92: examples/quickstart.rs

examples/quickstart.rs:
