/root/repo/target/release/deps/e01_hpl_vs_hpcg-58365b6e2927b12e.d: crates/bench/src/bin/e01_hpl_vs_hpcg.rs

/root/repo/target/release/deps/e01_hpl_vs_hpcg-58365b6e2927b12e: crates/bench/src/bin/e01_hpl_vs_hpcg.rs

crates/bench/src/bin/e01_hpl_vs_hpcg.rs:
