/root/repo/target/release/deps/e04_tsqr-27606591e4fb62ef.d: crates/bench/src/bin/e04_tsqr.rs

/root/repo/target/release/deps/e04_tsqr-27606591e4fb62ef: crates/bench/src/bin/e04_tsqr.rs

crates/bench/src/bin/e04_tsqr.rs:
