/root/repo/target/release/deps/e17_chaos_runtime-3f86081a9964075f.d: crates/bench/src/bin/e17_chaos_runtime.rs

/root/repo/target/release/deps/e17_chaos_runtime-3f86081a9964075f: crates/bench/src/bin/e17_chaos_runtime.rs

crates/bench/src/bin/e17_chaos_runtime.rs:
