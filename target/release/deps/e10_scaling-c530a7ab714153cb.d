/root/repo/target/release/deps/e10_scaling-c530a7ab714153cb.d: crates/bench/src/bin/e10_scaling.rs

/root/repo/target/release/deps/e10_scaling-c530a7ab714153cb: crates/bench/src/bin/e10_scaling.rs

crates/bench/src/bin/e10_scaling.rs:
