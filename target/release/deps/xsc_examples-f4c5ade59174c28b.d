/root/repo/target/release/deps/xsc_examples-f4c5ade59174c28b.d: examples/lib.rs

/root/repo/target/release/deps/libxsc_examples-f4c5ade59174c28b.rlib: examples/lib.rs

/root/repo/target/release/deps/libxsc_examples-f4c5ade59174c28b.rmeta: examples/lib.rs

examples/lib.rs:
