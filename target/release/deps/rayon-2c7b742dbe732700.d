/root/repo/target/release/deps/rayon-2c7b742dbe732700.d: crates/shims/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-2c7b742dbe732700.rlib: crates/shims/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-2c7b742dbe732700.rmeta: crates/shims/rayon/src/lib.rs

crates/shims/rayon/src/lib.rs:
