/root/repo/target/release/deps/xsc_autotune-942ce182d2e21969.d: crates/autotune/src/lib.rs crates/autotune/src/gemm_tune.rs

/root/repo/target/release/deps/libxsc_autotune-942ce182d2e21969.rlib: crates/autotune/src/lib.rs crates/autotune/src/gemm_tune.rs

/root/repo/target/release/deps/libxsc_autotune-942ce182d2e21969.rmeta: crates/autotune/src/lib.rs crates/autotune/src/gemm_tune.rs

crates/autotune/src/lib.rs:
crates/autotune/src/gemm_tune.rs:
