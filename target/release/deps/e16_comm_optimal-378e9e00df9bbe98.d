/root/repo/target/release/deps/e16_comm_optimal-378e9e00df9bbe98.d: crates/bench/src/bin/e16_comm_optimal.rs

/root/repo/target/release/deps/e16_comm_optimal-378e9e00df9bbe98: crates/bench/src/bin/e16_comm_optimal.rs

crates/bench/src/bin/e16_comm_optimal.rs:
