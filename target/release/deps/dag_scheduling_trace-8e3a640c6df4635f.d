/root/repo/target/release/deps/dag_scheduling_trace-8e3a640c6df4635f.d: examples/dag_scheduling_trace.rs

/root/repo/target/release/deps/dag_scheduling_trace-8e3a640c6df4635f: examples/dag_scheduling_trace.rs

examples/dag_scheduling_trace.rs:
