/root/repo/target/release/deps/fault_tolerant_factorization-f3cf1066155259ee.d: examples/fault_tolerant_factorization.rs

/root/repo/target/release/deps/fault_tolerant_factorization-f3cf1066155259ee: examples/fault_tolerant_factorization.rs

examples/fault_tolerant_factorization.rs:
