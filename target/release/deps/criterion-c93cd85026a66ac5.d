/root/repo/target/release/deps/criterion-c93cd85026a66ac5.d: crates/shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-c93cd85026a66ac5.rlib: crates/shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-c93cd85026a66ac5.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
