/root/repo/target/release/deps/e16_comm_optimal-b961f4d83137dd7a.d: crates/bench/src/bin/e16_comm_optimal.rs

/root/repo/target/release/deps/e16_comm_optimal-b961f4d83137dd7a: crates/bench/src/bin/e16_comm_optimal.rs

crates/bench/src/bin/e16_comm_optimal.rs:
