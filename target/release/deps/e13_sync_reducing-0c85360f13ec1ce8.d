/root/repo/target/release/deps/e13_sync_reducing-0c85360f13ec1ce8.d: crates/bench/src/bin/e13_sync_reducing.rs

/root/repo/target/release/deps/e13_sync_reducing-0c85360f13ec1ce8: crates/bench/src/bin/e13_sync_reducing.rs

crates/bench/src/bin/e13_sync_reducing.rs:
