/root/repo/target/release/deps/xsc_tests-f67d745592acf5b9.d: tests/src/lib.rs

/root/repo/target/release/deps/libxsc_tests-f67d745592acf5b9.rlib: tests/src/lib.rs

/root/repo/target/release/deps/libxsc_tests-f67d745592acf5b9.rmeta: tests/src/lib.rs

tests/src/lib.rs:
