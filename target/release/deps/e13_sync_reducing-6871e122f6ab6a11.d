/root/repo/target/release/deps/e13_sync_reducing-6871e122f6ab6a11.d: crates/bench/src/bin/e13_sync_reducing.rs

/root/repo/target/release/deps/e13_sync_reducing-6871e122f6ab6a11: crates/bench/src/bin/e13_sync_reducing.rs

crates/bench/src/bin/e13_sync_reducing.rs:
