/root/repo/target/release/deps/e01_hpl_vs_hpcg-d9abb00d63385350.d: crates/bench/src/bin/e01_hpl_vs_hpcg.rs

/root/repo/target/release/deps/e01_hpl_vs_hpcg-d9abb00d63385350: crates/bench/src/bin/e01_hpl_vs_hpcg.rs

crates/bench/src/bin/e01_hpl_vs_hpcg.rs:
