/root/repo/target/release/deps/e11_exascale_projection-e60666538477987b.d: crates/bench/src/bin/e11_exascale_projection.rs

/root/repo/target/release/deps/e11_exascale_projection-e60666538477987b: crates/bench/src/bin/e11_exascale_projection.rs

crates/bench/src/bin/e11_exascale_projection.rs:
