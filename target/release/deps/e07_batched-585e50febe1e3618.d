/root/repo/target/release/deps/e07_batched-585e50febe1e3618.d: crates/bench/src/bin/e07_batched.rs

/root/repo/target/release/deps/e07_batched-585e50febe1e3618: crates/bench/src/bin/e07_batched.rs

crates/bench/src/bin/e07_batched.rs:
