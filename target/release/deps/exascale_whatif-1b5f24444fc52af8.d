/root/repo/target/release/deps/exascale_whatif-1b5f24444fc52af8.d: examples/exascale_whatif.rs

/root/repo/target/release/deps/exascale_whatif-1b5f24444fc52af8: examples/exascale_whatif.rs

examples/exascale_whatif.rs:
