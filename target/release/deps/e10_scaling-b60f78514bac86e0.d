/root/repo/target/release/deps/e10_scaling-b60f78514bac86e0.d: crates/bench/src/bin/e10_scaling.rs

/root/repo/target/release/deps/e10_scaling-b60f78514bac86e0: crates/bench/src/bin/e10_scaling.rs

crates/bench/src/bin/e10_scaling.rs:
