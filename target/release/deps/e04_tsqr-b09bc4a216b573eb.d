/root/repo/target/release/deps/e04_tsqr-b09bc4a216b573eb.d: crates/bench/src/bin/e04_tsqr.rs

/root/repo/target/release/deps/e04_tsqr-b09bc4a216b573eb: crates/bench/src/bin/e04_tsqr.rs

crates/bench/src/bin/e04_tsqr.rs:
