/root/repo/target/release/deps/e10_scaling-f70784ccda8e2ebf.d: crates/bench/src/bin/e10_scaling.rs

/root/repo/target/release/deps/e10_scaling-f70784ccda8e2ebf: crates/bench/src/bin/e10_scaling.rs

crates/bench/src/bin/e10_scaling.rs:
