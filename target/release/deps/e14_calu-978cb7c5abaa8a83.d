/root/repo/target/release/deps/e14_calu-978cb7c5abaa8a83.d: crates/bench/src/bin/e14_calu.rs

/root/repo/target/release/deps/e14_calu-978cb7c5abaa8a83: crates/bench/src/bin/e14_calu.rs

crates/bench/src/bin/e14_calu.rs:
