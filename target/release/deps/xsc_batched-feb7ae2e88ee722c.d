/root/repo/target/release/deps/xsc_batched-feb7ae2e88ee722c.d: crates/batched/src/lib.rs

/root/repo/target/release/deps/libxsc_batched-feb7ae2e88ee722c.rlib: crates/batched/src/lib.rs

/root/repo/target/release/deps/libxsc_batched-feb7ae2e88ee722c.rmeta: crates/batched/src/lib.rs

crates/batched/src/lib.rs:
