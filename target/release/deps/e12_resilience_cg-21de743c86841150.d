/root/repo/target/release/deps/e12_resilience_cg-21de743c86841150.d: crates/bench/src/bin/e12_resilience_cg.rs

/root/repo/target/release/deps/e12_resilience_cg-21de743c86841150: crates/bench/src/bin/e12_resilience_cg.rs

crates/bench/src/bin/e12_resilience_cg.rs:
