/root/repo/target/release/deps/exascale_whatif-7221300ce30ef3c5.d: examples/exascale_whatif.rs

/root/repo/target/release/deps/exascale_whatif-7221300ce30ef3c5: examples/exascale_whatif.rs

examples/exascale_whatif.rs:
