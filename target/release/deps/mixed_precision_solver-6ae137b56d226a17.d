/root/repo/target/release/deps/mixed_precision_solver-6ae137b56d226a17.d: examples/mixed_precision_solver.rs

/root/repo/target/release/deps/mixed_precision_solver-6ae137b56d226a17: examples/mixed_precision_solver.rs

examples/mixed_precision_solver.rs:
