/root/repo/target/release/deps/e15_colored_smoother-fa8410c04d529a2f.d: crates/bench/src/bin/e15_colored_smoother.rs

/root/repo/target/release/deps/e15_colored_smoother-fa8410c04d529a2f: crates/bench/src/bin/e15_colored_smoother.rs

crates/bench/src/bin/e15_colored_smoother.rs:
