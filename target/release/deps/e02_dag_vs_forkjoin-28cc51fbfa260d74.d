/root/repo/target/release/deps/e02_dag_vs_forkjoin-28cc51fbfa260d74.d: crates/bench/src/bin/e02_dag_vs_forkjoin.rs

/root/repo/target/release/deps/e02_dag_vs_forkjoin-28cc51fbfa260d74: crates/bench/src/bin/e02_dag_vs_forkjoin.rs

crates/bench/src/bin/e02_dag_vs_forkjoin.rs:
