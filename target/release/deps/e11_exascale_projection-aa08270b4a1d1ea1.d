/root/repo/target/release/deps/e11_exascale_projection-aa08270b4a1d1ea1.d: crates/bench/src/bin/e11_exascale_projection.rs

/root/repo/target/release/deps/e11_exascale_projection-aa08270b4a1d1ea1: crates/bench/src/bin/e11_exascale_projection.rs

crates/bench/src/bin/e11_exascale_projection.rs:
