/root/repo/target/release/deps/e13_sync_reducing-aa13ab83b7ab9f41.d: crates/bench/src/bin/e13_sync_reducing.rs

/root/repo/target/release/deps/e13_sync_reducing-aa13ab83b7ab9f41: crates/bench/src/bin/e13_sync_reducing.rs

crates/bench/src/bin/e13_sync_reducing.rs:
