/root/repo/target/release/deps/e09_rbt-44eda58afc856c15.d: crates/bench/src/bin/e09_rbt.rs

/root/repo/target/release/deps/e09_rbt-44eda58afc856c15: crates/bench/src/bin/e09_rbt.rs

crates/bench/src/bin/e09_rbt.rs:
