/root/repo/target/release/deps/xsc_autotune-05f947c9b7d0835b.d: crates/autotune/src/lib.rs

/root/repo/target/release/deps/libxsc_autotune-05f947c9b7d0835b.rlib: crates/autotune/src/lib.rs

/root/repo/target/release/deps/libxsc_autotune-05f947c9b7d0835b.rmeta: crates/autotune/src/lib.rs

crates/autotune/src/lib.rs:
