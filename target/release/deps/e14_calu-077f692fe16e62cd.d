/root/repo/target/release/deps/e14_calu-077f692fe16e62cd.d: crates/bench/src/bin/e14_calu.rs

/root/repo/target/release/deps/e14_calu-077f692fe16e62cd: crates/bench/src/bin/e14_calu.rs

crates/bench/src/bin/e14_calu.rs:
