/root/repo/target/release/deps/e11_exascale_projection-9f856b2c66edea5d.d: crates/bench/src/bin/e11_exascale_projection.rs

/root/repo/target/release/deps/e11_exascale_projection-9f856b2c66edea5d: crates/bench/src/bin/e11_exascale_projection.rs

crates/bench/src/bin/e11_exascale_projection.rs:
