/root/repo/target/release/deps/e03_mixed_precision-24381502538dbabe.d: crates/bench/src/bin/e03_mixed_precision.rs

/root/repo/target/release/deps/e03_mixed_precision-24381502538dbabe: crates/bench/src/bin/e03_mixed_precision.rs

crates/bench/src/bin/e03_mixed_precision.rs:
