/root/repo/target/release/deps/hpl_vs_hpcg-012d5b9021843923.d: examples/hpl_vs_hpcg.rs

/root/repo/target/release/deps/hpl_vs_hpcg-012d5b9021843923: examples/hpl_vs_hpcg.rs

examples/hpl_vs_hpcg.rs:
