/root/repo/target/release/deps/e05_energy_table-4a2f061119e1dd80.d: crates/bench/src/bin/e05_energy_table.rs

/root/repo/target/release/deps/e05_energy_table-4a2f061119e1dd80: crates/bench/src/bin/e05_energy_table.rs

crates/bench/src/bin/e05_energy_table.rs:
