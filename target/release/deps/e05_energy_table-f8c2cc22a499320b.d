/root/repo/target/release/deps/e05_energy_table-f8c2cc22a499320b.d: crates/bench/src/bin/e05_energy_table.rs

/root/repo/target/release/deps/e05_energy_table-f8c2cc22a499320b: crates/bench/src/bin/e05_energy_table.rs

crates/bench/src/bin/e05_energy_table.rs:
