/root/repo/target/release/deps/parking_lot-c08137f5fd4ef612.d: crates/shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-c08137f5fd4ef612.rlib: crates/shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-c08137f5fd4ef612.rmeta: crates/shims/parking_lot/src/lib.rs

crates/shims/parking_lot/src/lib.rs:
