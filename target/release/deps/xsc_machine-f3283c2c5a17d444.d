/root/repo/target/release/deps/xsc_machine-f3283c2c5a17d444.d: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/comm_optimal.rs crates/machine/src/des.rs crates/machine/src/model.rs

/root/repo/target/release/deps/libxsc_machine-f3283c2c5a17d444.rlib: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/comm_optimal.rs crates/machine/src/des.rs crates/machine/src/model.rs

/root/repo/target/release/deps/libxsc_machine-f3283c2c5a17d444.rmeta: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/comm_optimal.rs crates/machine/src/des.rs crates/machine/src/model.rs

crates/machine/src/lib.rs:
crates/machine/src/collectives.rs:
crates/machine/src/comm_optimal.rs:
crates/machine/src/des.rs:
crates/machine/src/model.rs:
