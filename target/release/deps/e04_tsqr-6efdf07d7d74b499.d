/root/repo/target/release/deps/e04_tsqr-6efdf07d7d74b499.d: crates/bench/src/bin/e04_tsqr.rs

/root/repo/target/release/deps/e04_tsqr-6efdf07d7d74b499: crates/bench/src/bin/e04_tsqr.rs

crates/bench/src/bin/e04_tsqr.rs:
