/root/repo/target/release/deps/xsc_ft-d989b337304a3538.d: crates/ft/src/lib.rs crates/ft/src/abft.rs crates/ft/src/checkpoint.rs crates/ft/src/inject.rs

/root/repo/target/release/deps/libxsc_ft-d989b337304a3538.rlib: crates/ft/src/lib.rs crates/ft/src/abft.rs crates/ft/src/checkpoint.rs crates/ft/src/inject.rs

/root/repo/target/release/deps/libxsc_ft-d989b337304a3538.rmeta: crates/ft/src/lib.rs crates/ft/src/abft.rs crates/ft/src/checkpoint.rs crates/ft/src/inject.rs

crates/ft/src/lib.rs:
crates/ft/src/abft.rs:
crates/ft/src/checkpoint.rs:
crates/ft/src/inject.rs:
