/root/repo/target/release/deps/xsc_dense-8ee8957eb43a2814.d: crates/dense/src/lib.rs crates/dense/src/calu.rs crates/dense/src/cholesky.rs crates/dense/src/hpl.rs crates/dense/src/lu.rs crates/dense/src/qr.rs crates/dense/src/rbt.rs crates/dense/src/tsqr.rs crates/dense/src/poison.rs

/root/repo/target/release/deps/libxsc_dense-8ee8957eb43a2814.rlib: crates/dense/src/lib.rs crates/dense/src/calu.rs crates/dense/src/cholesky.rs crates/dense/src/hpl.rs crates/dense/src/lu.rs crates/dense/src/qr.rs crates/dense/src/rbt.rs crates/dense/src/tsqr.rs crates/dense/src/poison.rs

/root/repo/target/release/deps/libxsc_dense-8ee8957eb43a2814.rmeta: crates/dense/src/lib.rs crates/dense/src/calu.rs crates/dense/src/cholesky.rs crates/dense/src/hpl.rs crates/dense/src/lu.rs crates/dense/src/qr.rs crates/dense/src/rbt.rs crates/dense/src/tsqr.rs crates/dense/src/poison.rs

crates/dense/src/lib.rs:
crates/dense/src/calu.rs:
crates/dense/src/cholesky.rs:
crates/dense/src/hpl.rs:
crates/dense/src/lu.rs:
crates/dense/src/qr.rs:
crates/dense/src/rbt.rs:
crates/dense/src/tsqr.rs:
crates/dense/src/poison.rs:
