/root/repo/target/release/deps/e07_batched-7ec6c152c7b690be.d: crates/bench/src/bin/e07_batched.rs

/root/repo/target/release/deps/e07_batched-7ec6c152c7b690be: crates/bench/src/bin/e07_batched.rs

crates/bench/src/bin/e07_batched.rs:
