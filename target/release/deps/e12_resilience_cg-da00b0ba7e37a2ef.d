/root/repo/target/release/deps/e12_resilience_cg-da00b0ba7e37a2ef.d: crates/bench/src/bin/e12_resilience_cg.rs

/root/repo/target/release/deps/e12_resilience_cg-da00b0ba7e37a2ef: crates/bench/src/bin/e12_resilience_cg.rs

crates/bench/src/bin/e12_resilience_cg.rs:
