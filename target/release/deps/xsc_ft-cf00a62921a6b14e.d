/root/repo/target/release/deps/xsc_ft-cf00a62921a6b14e.d: crates/ft/src/lib.rs crates/ft/src/abft.rs crates/ft/src/checkpoint.rs crates/ft/src/inject.rs crates/ft/src/plan.rs

/root/repo/target/release/deps/libxsc_ft-cf00a62921a6b14e.rlib: crates/ft/src/lib.rs crates/ft/src/abft.rs crates/ft/src/checkpoint.rs crates/ft/src/inject.rs crates/ft/src/plan.rs

/root/repo/target/release/deps/libxsc_ft-cf00a62921a6b14e.rmeta: crates/ft/src/lib.rs crates/ft/src/abft.rs crates/ft/src/checkpoint.rs crates/ft/src/inject.rs crates/ft/src/plan.rs

crates/ft/src/lib.rs:
crates/ft/src/abft.rs:
crates/ft/src/checkpoint.rs:
crates/ft/src/inject.rs:
crates/ft/src/plan.rs:
