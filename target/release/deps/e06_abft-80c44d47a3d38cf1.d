/root/repo/target/release/deps/e06_abft-80c44d47a3d38cf1.d: crates/bench/src/bin/e06_abft.rs

/root/repo/target/release/deps/e06_abft-80c44d47a3d38cf1: crates/bench/src/bin/e06_abft.rs

crates/bench/src/bin/e06_abft.rs:
