/root/repo/target/release/deps/hpl_vs_hpcg-7d5cf9cf75f2c132.d: examples/hpl_vs_hpcg.rs

/root/repo/target/release/deps/hpl_vs_hpcg-7d5cf9cf75f2c132: examples/hpl_vs_hpcg.rs

examples/hpl_vs_hpcg.rs:
