/root/repo/target/release/deps/quickstart-568b75147c8072ff.d: examples/quickstart.rs

/root/repo/target/release/deps/quickstart-568b75147c8072ff: examples/quickstart.rs

examples/quickstart.rs:
