/root/repo/target/release/deps/e12_resilience_cg-1955a2721437bc3a.d: crates/bench/src/bin/e12_resilience_cg.rs

/root/repo/target/release/deps/e12_resilience_cg-1955a2721437bc3a: crates/bench/src/bin/e12_resilience_cg.rs

crates/bench/src/bin/e12_resilience_cg.rs:
