/root/repo/target/release/deps/mixed_precision_solver-437af02aa8b91292.d: examples/mixed_precision_solver.rs

/root/repo/target/release/deps/mixed_precision_solver-437af02aa8b91292: examples/mixed_precision_solver.rs

examples/mixed_precision_solver.rs:
