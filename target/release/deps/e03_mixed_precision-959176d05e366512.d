/root/repo/target/release/deps/e03_mixed_precision-959176d05e366512.d: crates/bench/src/bin/e03_mixed_precision.rs

/root/repo/target/release/deps/e03_mixed_precision-959176d05e366512: crates/bench/src/bin/e03_mixed_precision.rs

crates/bench/src/bin/e03_mixed_precision.rs:
