/root/repo/target/release/deps/e08_autotune-ef6a063eaf0ebd9d.d: crates/bench/src/bin/e08_autotune.rs

/root/repo/target/release/deps/e08_autotune-ef6a063eaf0ebd9d: crates/bench/src/bin/e08_autotune.rs

crates/bench/src/bin/e08_autotune.rs:
