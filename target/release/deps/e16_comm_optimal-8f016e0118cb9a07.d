/root/repo/target/release/deps/e16_comm_optimal-8f016e0118cb9a07.d: crates/bench/src/bin/e16_comm_optimal.rs

/root/repo/target/release/deps/e16_comm_optimal-8f016e0118cb9a07: crates/bench/src/bin/e16_comm_optimal.rs

crates/bench/src/bin/e16_comm_optimal.rs:
