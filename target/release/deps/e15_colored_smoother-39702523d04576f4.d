/root/repo/target/release/deps/e15_colored_smoother-39702523d04576f4.d: crates/bench/src/bin/e15_colored_smoother.rs

/root/repo/target/release/deps/e15_colored_smoother-39702523d04576f4: crates/bench/src/bin/e15_colored_smoother.rs

crates/bench/src/bin/e15_colored_smoother.rs:
