/root/repo/target/release/deps/xsc_bench-913bae7c14046e5e.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/e01_hpl_vs_hpcg.rs crates/bench/src/experiments/e02_dag_vs_forkjoin.rs crates/bench/src/experiments/e03_mixed_precision.rs crates/bench/src/experiments/e04_tsqr.rs crates/bench/src/experiments/e05_energy_table.rs crates/bench/src/experiments/e06_abft.rs crates/bench/src/experiments/e07_batched.rs crates/bench/src/experiments/e08_autotune.rs crates/bench/src/experiments/e09_rbt.rs crates/bench/src/experiments/e10_scaling.rs crates/bench/src/experiments/e11_exascale_projection.rs crates/bench/src/experiments/e12_resilience_cg.rs crates/bench/src/experiments/e13_sync_reducing.rs crates/bench/src/experiments/e14_calu.rs crates/bench/src/experiments/e15_colored_smoother.rs crates/bench/src/experiments/e16_comm_optimal.rs crates/bench/src/experiments/e17_chaos_runtime.rs crates/bench/src/json.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libxsc_bench-913bae7c14046e5e.rlib: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/e01_hpl_vs_hpcg.rs crates/bench/src/experiments/e02_dag_vs_forkjoin.rs crates/bench/src/experiments/e03_mixed_precision.rs crates/bench/src/experiments/e04_tsqr.rs crates/bench/src/experiments/e05_energy_table.rs crates/bench/src/experiments/e06_abft.rs crates/bench/src/experiments/e07_batched.rs crates/bench/src/experiments/e08_autotune.rs crates/bench/src/experiments/e09_rbt.rs crates/bench/src/experiments/e10_scaling.rs crates/bench/src/experiments/e11_exascale_projection.rs crates/bench/src/experiments/e12_resilience_cg.rs crates/bench/src/experiments/e13_sync_reducing.rs crates/bench/src/experiments/e14_calu.rs crates/bench/src/experiments/e15_colored_smoother.rs crates/bench/src/experiments/e16_comm_optimal.rs crates/bench/src/experiments/e17_chaos_runtime.rs crates/bench/src/json.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libxsc_bench-913bae7c14046e5e.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/e01_hpl_vs_hpcg.rs crates/bench/src/experiments/e02_dag_vs_forkjoin.rs crates/bench/src/experiments/e03_mixed_precision.rs crates/bench/src/experiments/e04_tsqr.rs crates/bench/src/experiments/e05_energy_table.rs crates/bench/src/experiments/e06_abft.rs crates/bench/src/experiments/e07_batched.rs crates/bench/src/experiments/e08_autotune.rs crates/bench/src/experiments/e09_rbt.rs crates/bench/src/experiments/e10_scaling.rs crates/bench/src/experiments/e11_exascale_projection.rs crates/bench/src/experiments/e12_resilience_cg.rs crates/bench/src/experiments/e13_sync_reducing.rs crates/bench/src/experiments/e14_calu.rs crates/bench/src/experiments/e15_colored_smoother.rs crates/bench/src/experiments/e16_comm_optimal.rs crates/bench/src/experiments/e17_chaos_runtime.rs crates/bench/src/json.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/e01_hpl_vs_hpcg.rs:
crates/bench/src/experiments/e02_dag_vs_forkjoin.rs:
crates/bench/src/experiments/e03_mixed_precision.rs:
crates/bench/src/experiments/e04_tsqr.rs:
crates/bench/src/experiments/e05_energy_table.rs:
crates/bench/src/experiments/e06_abft.rs:
crates/bench/src/experiments/e07_batched.rs:
crates/bench/src/experiments/e08_autotune.rs:
crates/bench/src/experiments/e09_rbt.rs:
crates/bench/src/experiments/e10_scaling.rs:
crates/bench/src/experiments/e11_exascale_projection.rs:
crates/bench/src/experiments/e12_resilience_cg.rs:
crates/bench/src/experiments/e13_sync_reducing.rs:
crates/bench/src/experiments/e14_calu.rs:
crates/bench/src/experiments/e15_colored_smoother.rs:
crates/bench/src/experiments/e16_comm_optimal.rs:
crates/bench/src/experiments/e17_chaos_runtime.rs:
crates/bench/src/json.rs:
crates/bench/src/table.rs:
