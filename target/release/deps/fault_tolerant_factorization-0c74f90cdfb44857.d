/root/repo/target/release/deps/fault_tolerant_factorization-0c74f90cdfb44857.d: examples/fault_tolerant_factorization.rs

/root/repo/target/release/deps/fault_tolerant_factorization-0c74f90cdfb44857: examples/fault_tolerant_factorization.rs

examples/fault_tolerant_factorization.rs:
