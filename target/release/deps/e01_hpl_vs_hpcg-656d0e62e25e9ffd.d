/root/repo/target/release/deps/e01_hpl_vs_hpcg-656d0e62e25e9ffd.d: crates/bench/src/bin/e01_hpl_vs_hpcg.rs

/root/repo/target/release/deps/e01_hpl_vs_hpcg-656d0e62e25e9ffd: crates/bench/src/bin/e01_hpl_vs_hpcg.rs

crates/bench/src/bin/e01_hpl_vs_hpcg.rs:
