/root/repo/target/release/deps/gemm_perf-7de1d743ba1ddd3e.d: crates/core/tests/gemm_perf.rs

/root/repo/target/release/deps/gemm_perf-7de1d743ba1ddd3e: crates/core/tests/gemm_perf.rs

crates/core/tests/gemm_perf.rs:
