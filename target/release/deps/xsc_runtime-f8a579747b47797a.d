/root/repo/target/release/deps/xsc_runtime-f8a579747b47797a.d: crates/runtime/src/lib.rs crates/runtime/src/executor.rs crates/runtime/src/graph.rs crates/runtime/src/resilience.rs crates/runtime/src/trace.rs

/root/repo/target/release/deps/libxsc_runtime-f8a579747b47797a.rlib: crates/runtime/src/lib.rs crates/runtime/src/executor.rs crates/runtime/src/graph.rs crates/runtime/src/resilience.rs crates/runtime/src/trace.rs

/root/repo/target/release/deps/libxsc_runtime-f8a579747b47797a.rmeta: crates/runtime/src/lib.rs crates/runtime/src/executor.rs crates/runtime/src/graph.rs crates/runtime/src/resilience.rs crates/runtime/src/trace.rs

crates/runtime/src/lib.rs:
crates/runtime/src/executor.rs:
crates/runtime/src/graph.rs:
crates/runtime/src/resilience.rs:
crates/runtime/src/trace.rs:
