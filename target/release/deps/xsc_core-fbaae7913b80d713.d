/root/repo/target/release/deps/xsc_core-fbaae7913b80d713.d: crates/core/src/lib.rs crates/core/src/blas1.rs crates/core/src/cond.rs crates/core/src/error.rs crates/core/src/factor.rs crates/core/src/flops.rs crates/core/src/gemm.rs crates/core/src/gen.rs crates/core/src/householder.rs crates/core/src/matrix.rs crates/core/src/norms.rs crates/core/src/scalar.rs crates/core/src/syrk.rs crates/core/src/tile.rs crates/core/src/trsm.rs

/root/repo/target/release/deps/libxsc_core-fbaae7913b80d713.rlib: crates/core/src/lib.rs crates/core/src/blas1.rs crates/core/src/cond.rs crates/core/src/error.rs crates/core/src/factor.rs crates/core/src/flops.rs crates/core/src/gemm.rs crates/core/src/gen.rs crates/core/src/householder.rs crates/core/src/matrix.rs crates/core/src/norms.rs crates/core/src/scalar.rs crates/core/src/syrk.rs crates/core/src/tile.rs crates/core/src/trsm.rs

/root/repo/target/release/deps/libxsc_core-fbaae7913b80d713.rmeta: crates/core/src/lib.rs crates/core/src/blas1.rs crates/core/src/cond.rs crates/core/src/error.rs crates/core/src/factor.rs crates/core/src/flops.rs crates/core/src/gemm.rs crates/core/src/gen.rs crates/core/src/householder.rs crates/core/src/matrix.rs crates/core/src/norms.rs crates/core/src/scalar.rs crates/core/src/syrk.rs crates/core/src/tile.rs crates/core/src/trsm.rs

crates/core/src/lib.rs:
crates/core/src/blas1.rs:
crates/core/src/cond.rs:
crates/core/src/error.rs:
crates/core/src/factor.rs:
crates/core/src/flops.rs:
crates/core/src/gemm.rs:
crates/core/src/gen.rs:
crates/core/src/householder.rs:
crates/core/src/matrix.rs:
crates/core/src/norms.rs:
crates/core/src/scalar.rs:
crates/core/src/syrk.rs:
crates/core/src/tile.rs:
crates/core/src/trsm.rs:
