/root/repo/target/release/deps/e03_mixed_precision-6717850dadf1e538.d: crates/bench/src/bin/e03_mixed_precision.rs

/root/repo/target/release/deps/e03_mixed_precision-6717850dadf1e538: crates/bench/src/bin/e03_mixed_precision.rs

crates/bench/src/bin/e03_mixed_precision.rs:
