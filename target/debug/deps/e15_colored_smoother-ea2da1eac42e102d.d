/root/repo/target/debug/deps/e15_colored_smoother-ea2da1eac42e102d.d: crates/bench/src/bin/e15_colored_smoother.rs

/root/repo/target/debug/deps/e15_colored_smoother-ea2da1eac42e102d: crates/bench/src/bin/e15_colored_smoother.rs

crates/bench/src/bin/e15_colored_smoother.rs:
