/root/repo/target/debug/deps/des_replays_runtime-6729dc6d21a101c8.d: tests/tests/des_replays_runtime.rs Cargo.toml

/root/repo/target/debug/deps/libdes_replays_runtime-6729dc6d21a101c8.rmeta: tests/tests/des_replays_runtime.rs Cargo.toml

tests/tests/des_replays_runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
