/root/repo/target/debug/deps/e15_colored_smoother-b25dda6564006cb8.d: crates/bench/src/bin/e15_colored_smoother.rs

/root/repo/target/debug/deps/e15_colored_smoother-b25dda6564006cb8: crates/bench/src/bin/e15_colored_smoother.rs

crates/bench/src/bin/e15_colored_smoother.rs:
