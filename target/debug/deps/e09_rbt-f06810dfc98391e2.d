/root/repo/target/debug/deps/e09_rbt-f06810dfc98391e2.d: crates/bench/src/bin/e09_rbt.rs

/root/repo/target/debug/deps/e09_rbt-f06810dfc98391e2: crates/bench/src/bin/e09_rbt.rs

crates/bench/src/bin/e09_rbt.rs:
