/root/repo/target/debug/deps/e07_batched-b2adec3eb3a39ff2.d: crates/bench/src/bin/e07_batched.rs

/root/repo/target/debug/deps/e07_batched-b2adec3eb3a39ff2: crates/bench/src/bin/e07_batched.rs

crates/bench/src/bin/e07_batched.rs:
