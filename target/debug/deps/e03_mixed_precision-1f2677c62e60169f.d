/root/repo/target/debug/deps/e03_mixed_precision-1f2677c62e60169f.d: crates/bench/src/bin/e03_mixed_precision.rs Cargo.toml

/root/repo/target/debug/deps/libe03_mixed_precision-1f2677c62e60169f.rmeta: crates/bench/src/bin/e03_mixed_precision.rs Cargo.toml

crates/bench/src/bin/e03_mixed_precision.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
