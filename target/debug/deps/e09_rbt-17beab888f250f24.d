/root/repo/target/debug/deps/e09_rbt-17beab888f250f24.d: crates/bench/src/bin/e09_rbt.rs Cargo.toml

/root/repo/target/debug/deps/libe09_rbt-17beab888f250f24.rmeta: crates/bench/src/bin/e09_rbt.rs Cargo.toml

crates/bench/src/bin/e09_rbt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
