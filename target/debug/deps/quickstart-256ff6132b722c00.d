/root/repo/target/debug/deps/quickstart-256ff6132b722c00.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-256ff6132b722c00: examples/quickstart.rs

examples/quickstart.rs:
