/root/repo/target/debug/deps/e11_exascale_projection-bc58195baffa682c.d: crates/bench/src/bin/e11_exascale_projection.rs

/root/repo/target/debug/deps/e11_exascale_projection-bc58195baffa682c: crates/bench/src/bin/e11_exascale_projection.rs

crates/bench/src/bin/e11_exascale_projection.rs:
