/root/repo/target/debug/deps/xsc_tests-08ec7367b7bc1251.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxsc_tests-08ec7367b7bc1251.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
