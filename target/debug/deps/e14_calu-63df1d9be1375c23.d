/root/repo/target/debug/deps/e14_calu-63df1d9be1375c23.d: crates/bench/src/bin/e14_calu.rs

/root/repo/target/debug/deps/e14_calu-63df1d9be1375c23: crates/bench/src/bin/e14_calu.rs

crates/bench/src/bin/e14_calu.rs:
