/root/repo/target/debug/deps/e15_colored_smoother-847adb49c01a01d2.d: crates/bench/src/bin/e15_colored_smoother.rs Cargo.toml

/root/repo/target/debug/deps/libe15_colored_smoother-847adb49c01a01d2.rmeta: crates/bench/src/bin/e15_colored_smoother.rs Cargo.toml

crates/bench/src/bin/e15_colored_smoother.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
