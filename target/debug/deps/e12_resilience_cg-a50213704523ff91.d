/root/repo/target/debug/deps/e12_resilience_cg-a50213704523ff91.d: crates/bench/src/bin/e12_resilience_cg.rs Cargo.toml

/root/repo/target/debug/deps/libe12_resilience_cg-a50213704523ff91.rmeta: crates/bench/src/bin/e12_resilience_cg.rs Cargo.toml

crates/bench/src/bin/e12_resilience_cg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
