/root/repo/target/debug/deps/xsc_autotune-13e6340daa70fb3c.d: crates/autotune/src/lib.rs

/root/repo/target/debug/deps/libxsc_autotune-13e6340daa70fb3c.rlib: crates/autotune/src/lib.rs

/root/repo/target/debug/deps/libxsc_autotune-13e6340daa70fb3c.rmeta: crates/autotune/src/lib.rs

crates/autotune/src/lib.rs:
