/root/repo/target/debug/deps/xsc_examples-f1634d9bb7a8ae0e.d: examples/lib.rs

/root/repo/target/debug/deps/xsc_examples-f1634d9bb7a8ae0e: examples/lib.rs

examples/lib.rs:
