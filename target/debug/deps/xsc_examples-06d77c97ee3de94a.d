/root/repo/target/debug/deps/xsc_examples-06d77c97ee3de94a.d: examples/lib.rs

/root/repo/target/debug/deps/libxsc_examples-06d77c97ee3de94a.rlib: examples/lib.rs

/root/repo/target/debug/deps/libxsc_examples-06d77c97ee3de94a.rmeta: examples/lib.rs

examples/lib.rs:
