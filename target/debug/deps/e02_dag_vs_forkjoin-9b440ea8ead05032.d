/root/repo/target/debug/deps/e02_dag_vs_forkjoin-9b440ea8ead05032.d: crates/bench/src/bin/e02_dag_vs_forkjoin.rs Cargo.toml

/root/repo/target/debug/deps/libe02_dag_vs_forkjoin-9b440ea8ead05032.rmeta: crates/bench/src/bin/e02_dag_vs_forkjoin.rs Cargo.toml

crates/bench/src/bin/e02_dag_vs_forkjoin.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
