/root/repo/target/debug/deps/e02_dag_vs_forkjoin-e01dea0667e5c61d.d: crates/bench/src/bin/e02_dag_vs_forkjoin.rs

/root/repo/target/debug/deps/e02_dag_vs_forkjoin-e01dea0667e5c61d: crates/bench/src/bin/e02_dag_vs_forkjoin.rs

crates/bench/src/bin/e02_dag_vs_forkjoin.rs:
