/root/repo/target/debug/deps/e06_abft-c09fdb0ec12fa355.d: crates/bench/src/bin/e06_abft.rs Cargo.toml

/root/repo/target/debug/deps/libe06_abft-c09fdb0ec12fa355.rmeta: crates/bench/src/bin/e06_abft.rs Cargo.toml

crates/bench/src/bin/e06_abft.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
