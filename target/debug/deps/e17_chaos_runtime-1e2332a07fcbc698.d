/root/repo/target/debug/deps/e17_chaos_runtime-1e2332a07fcbc698.d: crates/bench/src/bin/e17_chaos_runtime.rs Cargo.toml

/root/repo/target/debug/deps/libe17_chaos_runtime-1e2332a07fcbc698.rmeta: crates/bench/src/bin/e17_chaos_runtime.rs Cargo.toml

crates/bench/src/bin/e17_chaos_runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
