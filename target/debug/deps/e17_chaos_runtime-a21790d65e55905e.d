/root/repo/target/debug/deps/e17_chaos_runtime-a21790d65e55905e.d: crates/bench/src/bin/e17_chaos_runtime.rs

/root/repo/target/debug/deps/e17_chaos_runtime-a21790d65e55905e: crates/bench/src/bin/e17_chaos_runtime.rs

crates/bench/src/bin/e17_chaos_runtime.rs:
