/root/repo/target/debug/deps/e09_rbt-fced3aafe14619d7.d: crates/bench/src/bin/e09_rbt.rs

/root/repo/target/debug/deps/e09_rbt-fced3aafe14619d7: crates/bench/src/bin/e09_rbt.rs

crates/bench/src/bin/e09_rbt.rs:
