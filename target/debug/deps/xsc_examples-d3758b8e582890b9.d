/root/repo/target/debug/deps/xsc_examples-d3758b8e582890b9.d: examples/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxsc_examples-d3758b8e582890b9.rmeta: examples/lib.rs Cargo.toml

examples/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
