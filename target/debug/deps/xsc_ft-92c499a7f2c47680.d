/root/repo/target/debug/deps/xsc_ft-92c499a7f2c47680.d: crates/ft/src/lib.rs crates/ft/src/abft.rs crates/ft/src/checkpoint.rs crates/ft/src/inject.rs crates/ft/src/plan.rs

/root/repo/target/debug/deps/xsc_ft-92c499a7f2c47680: crates/ft/src/lib.rs crates/ft/src/abft.rs crates/ft/src/checkpoint.rs crates/ft/src/inject.rs crates/ft/src/plan.rs

crates/ft/src/lib.rs:
crates/ft/src/abft.rs:
crates/ft/src/checkpoint.rs:
crates/ft/src/inject.rs:
crates/ft/src/plan.rs:
