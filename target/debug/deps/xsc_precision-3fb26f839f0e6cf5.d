/root/repo/target/debug/deps/xsc_precision-3fb26f839f0e6cf5.d: crates/precision/src/lib.rs crates/precision/src/adaptive.rs crates/precision/src/gmres_ir.rs crates/precision/src/half.rs crates/precision/src/ir.rs

/root/repo/target/debug/deps/xsc_precision-3fb26f839f0e6cf5: crates/precision/src/lib.rs crates/precision/src/adaptive.rs crates/precision/src/gmres_ir.rs crates/precision/src/half.rs crates/precision/src/ir.rs

crates/precision/src/lib.rs:
crates/precision/src/adaptive.rs:
crates/precision/src/gmres_ir.rs:
crates/precision/src/half.rs:
crates/precision/src/ir.rs:
