/root/repo/target/debug/deps/e01_hpl_vs_hpcg-98f5e50d289d99ba.d: crates/bench/src/bin/e01_hpl_vs_hpcg.rs

/root/repo/target/debug/deps/e01_hpl_vs_hpcg-98f5e50d289d99ba: crates/bench/src/bin/e01_hpl_vs_hpcg.rs

crates/bench/src/bin/e01_hpl_vs_hpcg.rs:
