/root/repo/target/debug/deps/xsc_examples-0a919bfe908be84c.d: examples/lib.rs

/root/repo/target/debug/deps/xsc_examples-0a919bfe908be84c: examples/lib.rs

examples/lib.rs:
