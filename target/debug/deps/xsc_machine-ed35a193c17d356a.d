/root/repo/target/debug/deps/xsc_machine-ed35a193c17d356a.d: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/comm_optimal.rs crates/machine/src/des.rs crates/machine/src/model.rs

/root/repo/target/debug/deps/xsc_machine-ed35a193c17d356a: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/comm_optimal.rs crates/machine/src/des.rs crates/machine/src/model.rs

crates/machine/src/lib.rs:
crates/machine/src/collectives.rs:
crates/machine/src/comm_optimal.rs:
crates/machine/src/des.rs:
crates/machine/src/model.rs:
