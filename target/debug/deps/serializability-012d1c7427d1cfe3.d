/root/repo/target/debug/deps/serializability-012d1c7427d1cfe3.d: crates/runtime/tests/serializability.rs Cargo.toml

/root/repo/target/debug/deps/libserializability-012d1c7427d1cfe3.rmeta: crates/runtime/tests/serializability.rs Cargo.toml

crates/runtime/tests/serializability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
