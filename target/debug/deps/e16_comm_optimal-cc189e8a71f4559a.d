/root/repo/target/debug/deps/e16_comm_optimal-cc189e8a71f4559a.d: crates/bench/src/bin/e16_comm_optimal.rs

/root/repo/target/debug/deps/e16_comm_optimal-cc189e8a71f4559a: crates/bench/src/bin/e16_comm_optimal.rs

crates/bench/src/bin/e16_comm_optimal.rs:
