/root/repo/target/debug/deps/e01_hpl_vs_hpcg-7066d2622a7d2363.d: crates/bench/src/bin/e01_hpl_vs_hpcg.rs Cargo.toml

/root/repo/target/debug/deps/libe01_hpl_vs_hpcg-7066d2622a7d2363.rmeta: crates/bench/src/bin/e01_hpl_vs_hpcg.rs Cargo.toml

crates/bench/src/bin/e01_hpl_vs_hpcg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
