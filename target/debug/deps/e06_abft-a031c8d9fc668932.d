/root/repo/target/debug/deps/e06_abft-a031c8d9fc668932.d: crates/bench/src/bin/e06_abft.rs Cargo.toml

/root/repo/target/debug/deps/libe06_abft-a031c8d9fc668932.rmeta: crates/bench/src/bin/e06_abft.rs Cargo.toml

crates/bench/src/bin/e06_abft.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
