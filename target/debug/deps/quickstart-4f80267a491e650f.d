/root/repo/target/debug/deps/quickstart-4f80267a491e650f.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-4f80267a491e650f.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
