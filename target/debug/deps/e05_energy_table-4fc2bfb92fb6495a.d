/root/repo/target/debug/deps/e05_energy_table-4fc2bfb92fb6495a.d: crates/bench/src/bin/e05_energy_table.rs

/root/repo/target/debug/deps/e05_energy_table-4fc2bfb92fb6495a: crates/bench/src/bin/e05_energy_table.rs

crates/bench/src/bin/e05_energy_table.rs:
