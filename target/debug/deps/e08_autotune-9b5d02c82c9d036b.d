/root/repo/target/debug/deps/e08_autotune-9b5d02c82c9d036b.d: crates/bench/src/bin/e08_autotune.rs

/root/repo/target/debug/deps/e08_autotune-9b5d02c82c9d036b: crates/bench/src/bin/e08_autotune.rs

crates/bench/src/bin/e08_autotune.rs:
