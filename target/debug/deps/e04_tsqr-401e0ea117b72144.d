/root/repo/target/debug/deps/e04_tsqr-401e0ea117b72144.d: crates/bench/src/bin/e04_tsqr.rs

/root/repo/target/debug/deps/e04_tsqr-401e0ea117b72144: crates/bench/src/bin/e04_tsqr.rs

crates/bench/src/bin/e04_tsqr.rs:
