/root/repo/target/debug/deps/e11_exascale_projection-8fdddebbf2bd8d1c.d: crates/bench/src/bin/e11_exascale_projection.rs

/root/repo/target/debug/deps/e11_exascale_projection-8fdddebbf2bd8d1c: crates/bench/src/bin/e11_exascale_projection.rs

crates/bench/src/bin/e11_exascale_projection.rs:
