/root/repo/target/debug/deps/e06_abft-952eeea3ef5bb7d5.d: crates/bench/src/bin/e06_abft.rs

/root/repo/target/debug/deps/e06_abft-952eeea3ef5bb7d5: crates/bench/src/bin/e06_abft.rs

crates/bench/src/bin/e06_abft.rs:
