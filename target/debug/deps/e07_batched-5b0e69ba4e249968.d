/root/repo/target/debug/deps/e07_batched-5b0e69ba4e249968.d: crates/bench/src/bin/e07_batched.rs

/root/repo/target/debug/deps/e07_batched-5b0e69ba4e249968: crates/bench/src/bin/e07_batched.rs

crates/bench/src/bin/e07_batched.rs:
