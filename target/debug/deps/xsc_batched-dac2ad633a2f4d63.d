/root/repo/target/debug/deps/xsc_batched-dac2ad633a2f4d63.d: crates/batched/src/lib.rs

/root/repo/target/debug/deps/libxsc_batched-dac2ad633a2f4d63.rlib: crates/batched/src/lib.rs

/root/repo/target/debug/deps/libxsc_batched-dac2ad633a2f4d63.rmeta: crates/batched/src/lib.rs

crates/batched/src/lib.rs:
