/root/repo/target/debug/deps/e09_rbt-abcc3d5247920bd2.d: crates/bench/src/bin/e09_rbt.rs Cargo.toml

/root/repo/target/debug/deps/libe09_rbt-abcc3d5247920bd2.rmeta: crates/bench/src/bin/e09_rbt.rs Cargo.toml

crates/bench/src/bin/e09_rbt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
