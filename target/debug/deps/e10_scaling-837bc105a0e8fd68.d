/root/repo/target/debug/deps/e10_scaling-837bc105a0e8fd68.d: crates/bench/src/bin/e10_scaling.rs

/root/repo/target/debug/deps/e10_scaling-837bc105a0e8fd68: crates/bench/src/bin/e10_scaling.rs

crates/bench/src/bin/e10_scaling.rs:
