/root/repo/target/debug/deps/e10_scaling-dbe2c729ec3aac07.d: crates/bench/src/bin/e10_scaling.rs

/root/repo/target/debug/deps/e10_scaling-dbe2c729ec3aac07: crates/bench/src/bin/e10_scaling.rs

crates/bench/src/bin/e10_scaling.rs:
