/root/repo/target/debug/deps/parking_lot-dabe1ad8858e5156.d: crates/shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-dabe1ad8858e5156.rlib: crates/shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-dabe1ad8858e5156.rmeta: crates/shims/parking_lot/src/lib.rs

crates/shims/parking_lot/src/lib.rs:
