/root/repo/target/debug/deps/e08_autotune-0fd3087e35619edf.d: crates/bench/src/bin/e08_autotune.rs Cargo.toml

/root/repo/target/debug/deps/libe08_autotune-0fd3087e35619edf.rmeta: crates/bench/src/bin/e08_autotune.rs Cargo.toml

crates/bench/src/bin/e08_autotune.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
