/root/repo/target/debug/deps/e07_batched-eb870e9adf9ed329.d: crates/bench/src/bin/e07_batched.rs

/root/repo/target/debug/deps/e07_batched-eb870e9adf9ed329: crates/bench/src/bin/e07_batched.rs

crates/bench/src/bin/e07_batched.rs:
