/root/repo/target/debug/deps/chaos_determinism-395bc5f475e9d456.d: tests/tests/chaos_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_determinism-395bc5f475e9d456.rmeta: tests/tests/chaos_determinism.rs Cargo.toml

tests/tests/chaos_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
