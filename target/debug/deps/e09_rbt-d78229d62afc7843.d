/root/repo/target/debug/deps/e09_rbt-d78229d62afc7843.d: crates/bench/src/bin/e09_rbt.rs Cargo.toml

/root/repo/target/debug/deps/libe09_rbt-d78229d62afc7843.rmeta: crates/bench/src/bin/e09_rbt.rs Cargo.toml

crates/bench/src/bin/e09_rbt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
