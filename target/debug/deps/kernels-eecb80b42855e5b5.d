/root/repo/target/debug/deps/kernels-eecb80b42855e5b5.d: crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-eecb80b42855e5b5.rmeta: crates/bench/benches/kernels.rs Cargo.toml

crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
