/root/repo/target/debug/deps/e12_resilience_cg-c5653a47a5f007ce.d: crates/bench/src/bin/e12_resilience_cg.rs

/root/repo/target/debug/deps/e12_resilience_cg-c5653a47a5f007ce: crates/bench/src/bin/e12_resilience_cg.rs

crates/bench/src/bin/e12_resilience_cg.rs:
