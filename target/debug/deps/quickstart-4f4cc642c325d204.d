/root/repo/target/debug/deps/quickstart-4f4cc642c325d204.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-4f4cc642c325d204: examples/quickstart.rs

examples/quickstart.rs:
