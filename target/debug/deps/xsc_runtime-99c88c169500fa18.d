/root/repo/target/debug/deps/xsc_runtime-99c88c169500fa18.d: crates/runtime/src/lib.rs crates/runtime/src/executor.rs crates/runtime/src/graph.rs crates/runtime/src/resilience.rs crates/runtime/src/trace.rs

/root/repo/target/debug/deps/xsc_runtime-99c88c169500fa18: crates/runtime/src/lib.rs crates/runtime/src/executor.rs crates/runtime/src/graph.rs crates/runtime/src/resilience.rs crates/runtime/src/trace.rs

crates/runtime/src/lib.rs:
crates/runtime/src/executor.rs:
crates/runtime/src/graph.rs:
crates/runtime/src/resilience.rs:
crates/runtime/src/trace.rs:
