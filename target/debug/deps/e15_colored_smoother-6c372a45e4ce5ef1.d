/root/repo/target/debug/deps/e15_colored_smoother-6c372a45e4ce5ef1.d: crates/bench/src/bin/e15_colored_smoother.rs

/root/repo/target/debug/deps/e15_colored_smoother-6c372a45e4ce5ef1: crates/bench/src/bin/e15_colored_smoother.rs

crates/bench/src/bin/e15_colored_smoother.rs:
