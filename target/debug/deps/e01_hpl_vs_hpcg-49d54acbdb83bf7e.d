/root/repo/target/debug/deps/e01_hpl_vs_hpcg-49d54acbdb83bf7e.d: crates/bench/src/bin/e01_hpl_vs_hpcg.rs

/root/repo/target/debug/deps/e01_hpl_vs_hpcg-49d54acbdb83bf7e: crates/bench/src/bin/e01_hpl_vs_hpcg.rs

crates/bench/src/bin/e01_hpl_vs_hpcg.rs:
