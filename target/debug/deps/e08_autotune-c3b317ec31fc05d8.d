/root/repo/target/debug/deps/e08_autotune-c3b317ec31fc05d8.d: crates/bench/src/bin/e08_autotune.rs Cargo.toml

/root/repo/target/debug/deps/libe08_autotune-c3b317ec31fc05d8.rmeta: crates/bench/src/bin/e08_autotune.rs Cargo.toml

crates/bench/src/bin/e08_autotune.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
