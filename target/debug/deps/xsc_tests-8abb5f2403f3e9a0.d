/root/repo/target/debug/deps/xsc_tests-8abb5f2403f3e9a0.d: tests/src/lib.rs

/root/repo/target/debug/deps/xsc_tests-8abb5f2403f3e9a0: tests/src/lib.rs

tests/src/lib.rs:
