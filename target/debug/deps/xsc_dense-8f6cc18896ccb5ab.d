/root/repo/target/debug/deps/xsc_dense-8f6cc18896ccb5ab.d: crates/dense/src/lib.rs crates/dense/src/calu.rs crates/dense/src/cholesky.rs crates/dense/src/hpl.rs crates/dense/src/lu.rs crates/dense/src/qr.rs crates/dense/src/rbt.rs crates/dense/src/resilient.rs crates/dense/src/tsqr.rs crates/dense/src/poison.rs

/root/repo/target/debug/deps/libxsc_dense-8f6cc18896ccb5ab.rlib: crates/dense/src/lib.rs crates/dense/src/calu.rs crates/dense/src/cholesky.rs crates/dense/src/hpl.rs crates/dense/src/lu.rs crates/dense/src/qr.rs crates/dense/src/rbt.rs crates/dense/src/resilient.rs crates/dense/src/tsqr.rs crates/dense/src/poison.rs

/root/repo/target/debug/deps/libxsc_dense-8f6cc18896ccb5ab.rmeta: crates/dense/src/lib.rs crates/dense/src/calu.rs crates/dense/src/cholesky.rs crates/dense/src/hpl.rs crates/dense/src/lu.rs crates/dense/src/qr.rs crates/dense/src/rbt.rs crates/dense/src/resilient.rs crates/dense/src/tsqr.rs crates/dense/src/poison.rs

crates/dense/src/lib.rs:
crates/dense/src/calu.rs:
crates/dense/src/cholesky.rs:
crates/dense/src/hpl.rs:
crates/dense/src/lu.rs:
crates/dense/src/qr.rs:
crates/dense/src/rbt.rs:
crates/dense/src/resilient.rs:
crates/dense/src/tsqr.rs:
crates/dense/src/poison.rs:
