/root/repo/target/debug/deps/e03_mixed_precision-2a957d12a84d290a.d: crates/bench/src/bin/e03_mixed_precision.rs

/root/repo/target/debug/deps/e03_mixed_precision-2a957d12a84d290a: crates/bench/src/bin/e03_mixed_precision.rs

crates/bench/src/bin/e03_mixed_precision.rs:
