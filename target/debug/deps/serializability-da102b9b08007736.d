/root/repo/target/debug/deps/serializability-da102b9b08007736.d: crates/runtime/tests/serializability.rs

/root/repo/target/debug/deps/serializability-da102b9b08007736: crates/runtime/tests/serializability.rs

crates/runtime/tests/serializability.rs:
