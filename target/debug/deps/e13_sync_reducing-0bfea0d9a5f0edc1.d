/root/repo/target/debug/deps/e13_sync_reducing-0bfea0d9a5f0edc1.d: crates/bench/src/bin/e13_sync_reducing.rs

/root/repo/target/debug/deps/e13_sync_reducing-0bfea0d9a5f0edc1: crates/bench/src/bin/e13_sync_reducing.rs

crates/bench/src/bin/e13_sync_reducing.rs:
