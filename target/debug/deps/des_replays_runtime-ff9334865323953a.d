/root/repo/target/debug/deps/des_replays_runtime-ff9334865323953a.d: tests/tests/des_replays_runtime.rs

/root/repo/target/debug/deps/des_replays_runtime-ff9334865323953a: tests/tests/des_replays_runtime.rs

tests/tests/des_replays_runtime.rs:
