/root/repo/target/debug/deps/xsc_tests-c2eb9297d3debbd8.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxsc_tests-c2eb9297d3debbd8.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
