/root/repo/target/debug/deps/property_cross_crate-3e8b688d1c46b174.d: tests/tests/property_cross_crate.rs

/root/repo/target/debug/deps/property_cross_crate-3e8b688d1c46b174: tests/tests/property_cross_crate.rs

tests/tests/property_cross_crate.rs:
