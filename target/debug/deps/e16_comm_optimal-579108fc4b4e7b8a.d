/root/repo/target/debug/deps/e16_comm_optimal-579108fc4b4e7b8a.d: crates/bench/src/bin/e16_comm_optimal.rs

/root/repo/target/debug/deps/e16_comm_optimal-579108fc4b4e7b8a: crates/bench/src/bin/e16_comm_optimal.rs

crates/bench/src/bin/e16_comm_optimal.rs:
