/root/repo/target/debug/deps/xsc_dense-5de590b74049fa8b.d: crates/dense/src/lib.rs crates/dense/src/calu.rs crates/dense/src/cholesky.rs crates/dense/src/hpl.rs crates/dense/src/lu.rs crates/dense/src/qr.rs crates/dense/src/rbt.rs crates/dense/src/tsqr.rs crates/dense/src/poison.rs

/root/repo/target/debug/deps/xsc_dense-5de590b74049fa8b: crates/dense/src/lib.rs crates/dense/src/calu.rs crates/dense/src/cholesky.rs crates/dense/src/hpl.rs crates/dense/src/lu.rs crates/dense/src/qr.rs crates/dense/src/rbt.rs crates/dense/src/tsqr.rs crates/dense/src/poison.rs

crates/dense/src/lib.rs:
crates/dense/src/calu.rs:
crates/dense/src/cholesky.rs:
crates/dense/src/hpl.rs:
crates/dense/src/lu.rs:
crates/dense/src/qr.rs:
crates/dense/src/rbt.rs:
crates/dense/src/tsqr.rs:
crates/dense/src/poison.rs:
