/root/repo/target/debug/deps/xsc_tests-64e9eaf793ed848b.d: tests/src/lib.rs

/root/repo/target/debug/deps/libxsc_tests-64e9eaf793ed848b.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libxsc_tests-64e9eaf793ed848b.rmeta: tests/src/lib.rs

tests/src/lib.rs:
