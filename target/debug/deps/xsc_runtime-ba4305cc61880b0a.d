/root/repo/target/debug/deps/xsc_runtime-ba4305cc61880b0a.d: crates/runtime/src/lib.rs crates/runtime/src/executor.rs crates/runtime/src/graph.rs crates/runtime/src/resilience.rs crates/runtime/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libxsc_runtime-ba4305cc61880b0a.rmeta: crates/runtime/src/lib.rs crates/runtime/src/executor.rs crates/runtime/src/graph.rs crates/runtime/src/resilience.rs crates/runtime/src/trace.rs Cargo.toml

crates/runtime/src/lib.rs:
crates/runtime/src/executor.rs:
crates/runtime/src/graph.rs:
crates/runtime/src/resilience.rs:
crates/runtime/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
