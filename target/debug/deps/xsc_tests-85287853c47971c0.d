/root/repo/target/debug/deps/xsc_tests-85287853c47971c0.d: tests/src/lib.rs

/root/repo/target/debug/deps/xsc_tests-85287853c47971c0: tests/src/lib.rs

tests/src/lib.rs:
