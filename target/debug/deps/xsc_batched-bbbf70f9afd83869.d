/root/repo/target/debug/deps/xsc_batched-bbbf70f9afd83869.d: crates/batched/src/lib.rs

/root/repo/target/debug/deps/libxsc_batched-bbbf70f9afd83869.rlib: crates/batched/src/lib.rs

/root/repo/target/debug/deps/libxsc_batched-bbbf70f9afd83869.rmeta: crates/batched/src/lib.rs

crates/batched/src/lib.rs:
