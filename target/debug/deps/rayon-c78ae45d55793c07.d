/root/repo/target/debug/deps/rayon-c78ae45d55793c07.d: crates/shims/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-c78ae45d55793c07.rlib: crates/shims/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-c78ae45d55793c07.rmeta: crates/shims/rayon/src/lib.rs

crates/shims/rayon/src/lib.rs:
