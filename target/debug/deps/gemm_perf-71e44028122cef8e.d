/root/repo/target/debug/deps/gemm_perf-71e44028122cef8e.d: crates/core/tests/gemm_perf.rs

/root/repo/target/debug/deps/gemm_perf-71e44028122cef8e: crates/core/tests/gemm_perf.rs

crates/core/tests/gemm_perf.rs:
