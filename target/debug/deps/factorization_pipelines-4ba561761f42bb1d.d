/root/repo/target/debug/deps/factorization_pipelines-4ba561761f42bb1d.d: tests/tests/factorization_pipelines.rs Cargo.toml

/root/repo/target/debug/deps/libfactorization_pipelines-4ba561761f42bb1d.rmeta: tests/tests/factorization_pipelines.rs Cargo.toml

tests/tests/factorization_pipelines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
