/root/repo/target/debug/deps/e05_energy_table-7f63c6eacbad94c1.d: crates/bench/src/bin/e05_energy_table.rs

/root/repo/target/debug/deps/e05_energy_table-7f63c6eacbad94c1: crates/bench/src/bin/e05_energy_table.rs

crates/bench/src/bin/e05_energy_table.rs:
