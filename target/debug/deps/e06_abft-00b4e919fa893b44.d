/root/repo/target/debug/deps/e06_abft-00b4e919fa893b44.d: crates/bench/src/bin/e06_abft.rs

/root/repo/target/debug/deps/e06_abft-00b4e919fa893b44: crates/bench/src/bin/e06_abft.rs

crates/bench/src/bin/e06_abft.rs:
