/root/repo/target/debug/deps/e02_dag_vs_forkjoin-033ea978112fc854.d: crates/bench/src/bin/e02_dag_vs_forkjoin.rs

/root/repo/target/debug/deps/e02_dag_vs_forkjoin-033ea978112fc854: crates/bench/src/bin/e02_dag_vs_forkjoin.rs

crates/bench/src/bin/e02_dag_vs_forkjoin.rs:
