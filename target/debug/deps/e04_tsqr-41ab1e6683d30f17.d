/root/repo/target/debug/deps/e04_tsqr-41ab1e6683d30f17.d: crates/bench/src/bin/e04_tsqr.rs

/root/repo/target/debug/deps/e04_tsqr-41ab1e6683d30f17: crates/bench/src/bin/e04_tsqr.rs

crates/bench/src/bin/e04_tsqr.rs:
