/root/repo/target/debug/deps/e16_comm_optimal-007f8920479c8bdd.d: crates/bench/src/bin/e16_comm_optimal.rs Cargo.toml

/root/repo/target/debug/deps/libe16_comm_optimal-007f8920479c8bdd.rmeta: crates/bench/src/bin/e16_comm_optimal.rs Cargo.toml

crates/bench/src/bin/e16_comm_optimal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
