/root/repo/target/debug/deps/exascale_whatif-0eb563ace92361f2.d: examples/exascale_whatif.rs

/root/repo/target/debug/deps/exascale_whatif-0eb563ace92361f2: examples/exascale_whatif.rs

examples/exascale_whatif.rs:
