/root/repo/target/debug/deps/xsc_examples-67ae10781790ecdc.d: examples/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxsc_examples-67ae10781790ecdc.rmeta: examples/lib.rs Cargo.toml

examples/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
