/root/repo/target/debug/deps/e17_chaos_runtime-563b46798d5a5777.d: crates/bench/src/bin/e17_chaos_runtime.rs

/root/repo/target/debug/deps/e17_chaos_runtime-563b46798d5a5777: crates/bench/src/bin/e17_chaos_runtime.rs

crates/bench/src/bin/e17_chaos_runtime.rs:
