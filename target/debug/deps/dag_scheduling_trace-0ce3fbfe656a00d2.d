/root/repo/target/debug/deps/dag_scheduling_trace-0ce3fbfe656a00d2.d: examples/dag_scheduling_trace.rs Cargo.toml

/root/repo/target/debug/deps/libdag_scheduling_trace-0ce3fbfe656a00d2.rmeta: examples/dag_scheduling_trace.rs Cargo.toml

examples/dag_scheduling_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
