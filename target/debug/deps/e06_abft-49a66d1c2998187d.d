/root/repo/target/debug/deps/e06_abft-49a66d1c2998187d.d: crates/bench/src/bin/e06_abft.rs Cargo.toml

/root/repo/target/debug/deps/libe06_abft-49a66d1c2998187d.rmeta: crates/bench/src/bin/e06_abft.rs Cargo.toml

crates/bench/src/bin/e06_abft.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
