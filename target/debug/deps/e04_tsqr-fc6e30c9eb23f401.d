/root/repo/target/debug/deps/e04_tsqr-fc6e30c9eb23f401.d: crates/bench/src/bin/e04_tsqr.rs Cargo.toml

/root/repo/target/debug/deps/libe04_tsqr-fc6e30c9eb23f401.rmeta: crates/bench/src/bin/e04_tsqr.rs Cargo.toml

crates/bench/src/bin/e04_tsqr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
