/root/repo/target/debug/deps/e12_resilience_cg-37ec4ae69b7e3112.d: crates/bench/src/bin/e12_resilience_cg.rs

/root/repo/target/debug/deps/e12_resilience_cg-37ec4ae69b7e3112: crates/bench/src/bin/e12_resilience_cg.rs

crates/bench/src/bin/e12_resilience_cg.rs:
