/root/repo/target/debug/deps/xsc_sparse-8c25fd2bac059de2.d: crates/sparse/src/lib.rs crates/sparse/src/cg.rs crates/sparse/src/chebyshev.rs crates/sparse/src/coloring.rs crates/sparse/src/csr.rs crates/sparse/src/hpcg.rs crates/sparse/src/matrix_powers.rs crates/sparse/src/mg.rs crates/sparse/src/pipelined.rs crates/sparse/src/sstep.rs crates/sparse/src/stencil.rs crates/sparse/src/symgs.rs Cargo.toml

/root/repo/target/debug/deps/libxsc_sparse-8c25fd2bac059de2.rmeta: crates/sparse/src/lib.rs crates/sparse/src/cg.rs crates/sparse/src/chebyshev.rs crates/sparse/src/coloring.rs crates/sparse/src/csr.rs crates/sparse/src/hpcg.rs crates/sparse/src/matrix_powers.rs crates/sparse/src/mg.rs crates/sparse/src/pipelined.rs crates/sparse/src/sstep.rs crates/sparse/src/stencil.rs crates/sparse/src/symgs.rs Cargo.toml

crates/sparse/src/lib.rs:
crates/sparse/src/cg.rs:
crates/sparse/src/chebyshev.rs:
crates/sparse/src/coloring.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/hpcg.rs:
crates/sparse/src/matrix_powers.rs:
crates/sparse/src/mg.rs:
crates/sparse/src/pipelined.rs:
crates/sparse/src/sstep.rs:
crates/sparse/src/stencil.rs:
crates/sparse/src/symgs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
