/root/repo/target/debug/deps/e17_chaos_runtime-0f553844b81ae7ee.d: crates/bench/src/bin/e17_chaos_runtime.rs

/root/repo/target/debug/deps/e17_chaos_runtime-0f553844b81ae7ee: crates/bench/src/bin/e17_chaos_runtime.rs

crates/bench/src/bin/e17_chaos_runtime.rs:
