/root/repo/target/debug/deps/chaos_determinism-751b0b49e4cc2024.d: tests/tests/chaos_determinism.rs

/root/repo/target/debug/deps/chaos_determinism-751b0b49e4cc2024: tests/tests/chaos_determinism.rs

tests/tests/chaos_determinism.rs:
