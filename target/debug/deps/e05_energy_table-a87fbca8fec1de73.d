/root/repo/target/debug/deps/e05_energy_table-a87fbca8fec1de73.d: crates/bench/src/bin/e05_energy_table.rs Cargo.toml

/root/repo/target/debug/deps/libe05_energy_table-a87fbca8fec1de73.rmeta: crates/bench/src/bin/e05_energy_table.rs Cargo.toml

crates/bench/src/bin/e05_energy_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
