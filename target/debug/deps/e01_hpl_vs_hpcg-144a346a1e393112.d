/root/repo/target/debug/deps/e01_hpl_vs_hpcg-144a346a1e393112.d: crates/bench/src/bin/e01_hpl_vs_hpcg.rs

/root/repo/target/debug/deps/e01_hpl_vs_hpcg-144a346a1e393112: crates/bench/src/bin/e01_hpl_vs_hpcg.rs

crates/bench/src/bin/e01_hpl_vs_hpcg.rs:
