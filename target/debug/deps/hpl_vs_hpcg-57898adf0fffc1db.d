/root/repo/target/debug/deps/hpl_vs_hpcg-57898adf0fffc1db.d: examples/hpl_vs_hpcg.rs

/root/repo/target/debug/deps/hpl_vs_hpcg-57898adf0fffc1db: examples/hpl_vs_hpcg.rs

examples/hpl_vs_hpcg.rs:
