/root/repo/target/debug/deps/e13_sync_reducing-33d0655dee5bc12d.d: crates/bench/src/bin/e13_sync_reducing.rs

/root/repo/target/debug/deps/e13_sync_reducing-33d0655dee5bc12d: crates/bench/src/bin/e13_sync_reducing.rs

crates/bench/src/bin/e13_sync_reducing.rs:
