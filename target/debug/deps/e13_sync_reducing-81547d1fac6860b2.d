/root/repo/target/debug/deps/e13_sync_reducing-81547d1fac6860b2.d: crates/bench/src/bin/e13_sync_reducing.rs Cargo.toml

/root/repo/target/debug/deps/libe13_sync_reducing-81547d1fac6860b2.rmeta: crates/bench/src/bin/e13_sync_reducing.rs Cargo.toml

crates/bench/src/bin/e13_sync_reducing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
