/root/repo/target/debug/deps/e10_scaling-3eeea369d1a67341.d: crates/bench/src/bin/e10_scaling.rs

/root/repo/target/debug/deps/e10_scaling-3eeea369d1a67341: crates/bench/src/bin/e10_scaling.rs

crates/bench/src/bin/e10_scaling.rs:
