/root/repo/target/debug/deps/mixed_precision_solver-fb64e4339efbf3a6.d: examples/mixed_precision_solver.rs

/root/repo/target/debug/deps/mixed_precision_solver-fb64e4339efbf3a6: examples/mixed_precision_solver.rs

examples/mixed_precision_solver.rs:
