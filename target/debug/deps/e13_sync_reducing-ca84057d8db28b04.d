/root/repo/target/debug/deps/e13_sync_reducing-ca84057d8db28b04.d: crates/bench/src/bin/e13_sync_reducing.rs

/root/repo/target/debug/deps/e13_sync_reducing-ca84057d8db28b04: crates/bench/src/bin/e13_sync_reducing.rs

crates/bench/src/bin/e13_sync_reducing.rs:
