/root/repo/target/debug/deps/e07_batched-4291497a0b1827b8.d: crates/bench/src/bin/e07_batched.rs Cargo.toml

/root/repo/target/debug/deps/libe07_batched-4291497a0b1827b8.rmeta: crates/bench/src/bin/e07_batched.rs Cargo.toml

crates/bench/src/bin/e07_batched.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
