/root/repo/target/debug/deps/xsc_runtime-7474e114a35d1ee9.d: crates/runtime/src/lib.rs crates/runtime/src/executor.rs crates/runtime/src/graph.rs crates/runtime/src/resilience.rs crates/runtime/src/trace.rs

/root/repo/target/debug/deps/libxsc_runtime-7474e114a35d1ee9.rlib: crates/runtime/src/lib.rs crates/runtime/src/executor.rs crates/runtime/src/graph.rs crates/runtime/src/resilience.rs crates/runtime/src/trace.rs

/root/repo/target/debug/deps/libxsc_runtime-7474e114a35d1ee9.rmeta: crates/runtime/src/lib.rs crates/runtime/src/executor.rs crates/runtime/src/graph.rs crates/runtime/src/resilience.rs crates/runtime/src/trace.rs

crates/runtime/src/lib.rs:
crates/runtime/src/executor.rs:
crates/runtime/src/graph.rs:
crates/runtime/src/resilience.rs:
crates/runtime/src/trace.rs:
