/root/repo/target/debug/deps/des_replays_runtime-8900a7eb76992e36.d: tests/tests/des_replays_runtime.rs

/root/repo/target/debug/deps/des_replays_runtime-8900a7eb76992e36: tests/tests/des_replays_runtime.rs

tests/tests/des_replays_runtime.rs:
