/root/repo/target/debug/deps/e16_comm_optimal-f37b69c80fc0e2a0.d: crates/bench/src/bin/e16_comm_optimal.rs

/root/repo/target/debug/deps/e16_comm_optimal-f37b69c80fc0e2a0: crates/bench/src/bin/e16_comm_optimal.rs

crates/bench/src/bin/e16_comm_optimal.rs:
