/root/repo/target/debug/deps/mixed_precision_solver-f627d228fb313df8.d: examples/mixed_precision_solver.rs Cargo.toml

/root/repo/target/debug/deps/libmixed_precision_solver-f627d228fb313df8.rmeta: examples/mixed_precision_solver.rs Cargo.toml

examples/mixed_precision_solver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
