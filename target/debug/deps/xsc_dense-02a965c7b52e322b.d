/root/repo/target/debug/deps/xsc_dense-02a965c7b52e322b.d: crates/dense/src/lib.rs crates/dense/src/calu.rs crates/dense/src/cholesky.rs crates/dense/src/hpl.rs crates/dense/src/lu.rs crates/dense/src/qr.rs crates/dense/src/rbt.rs crates/dense/src/resilient.rs crates/dense/src/tsqr.rs crates/dense/src/poison.rs Cargo.toml

/root/repo/target/debug/deps/libxsc_dense-02a965c7b52e322b.rmeta: crates/dense/src/lib.rs crates/dense/src/calu.rs crates/dense/src/cholesky.rs crates/dense/src/hpl.rs crates/dense/src/lu.rs crates/dense/src/qr.rs crates/dense/src/rbt.rs crates/dense/src/resilient.rs crates/dense/src/tsqr.rs crates/dense/src/poison.rs Cargo.toml

crates/dense/src/lib.rs:
crates/dense/src/calu.rs:
crates/dense/src/cholesky.rs:
crates/dense/src/hpl.rs:
crates/dense/src/lu.rs:
crates/dense/src/qr.rs:
crates/dense/src/rbt.rs:
crates/dense/src/resilient.rs:
crates/dense/src/tsqr.rs:
crates/dense/src/poison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
