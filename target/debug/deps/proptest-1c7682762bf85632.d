/root/repo/target/debug/deps/proptest-1c7682762bf85632.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-1c7682762bf85632: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
