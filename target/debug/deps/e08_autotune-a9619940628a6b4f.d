/root/repo/target/debug/deps/e08_autotune-a9619940628a6b4f.d: crates/bench/src/bin/e08_autotune.rs

/root/repo/target/debug/deps/e08_autotune-a9619940628a6b4f: crates/bench/src/bin/e08_autotune.rs

crates/bench/src/bin/e08_autotune.rs:
