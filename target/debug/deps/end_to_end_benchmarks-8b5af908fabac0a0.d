/root/repo/target/debug/deps/end_to_end_benchmarks-8b5af908fabac0a0.d: tests/tests/end_to_end_benchmarks.rs

/root/repo/target/debug/deps/end_to_end_benchmarks-8b5af908fabac0a0: tests/tests/end_to_end_benchmarks.rs

tests/tests/end_to_end_benchmarks.rs:
