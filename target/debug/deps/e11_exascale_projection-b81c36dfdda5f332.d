/root/repo/target/debug/deps/e11_exascale_projection-b81c36dfdda5f332.d: crates/bench/src/bin/e11_exascale_projection.rs

/root/repo/target/debug/deps/e11_exascale_projection-b81c36dfdda5f332: crates/bench/src/bin/e11_exascale_projection.rs

crates/bench/src/bin/e11_exascale_projection.rs:
