/root/repo/target/debug/deps/des_replays_runtime-7c19e8be72e5f530.d: tests/tests/des_replays_runtime.rs

/root/repo/target/debug/deps/des_replays_runtime-7c19e8be72e5f530: tests/tests/des_replays_runtime.rs

tests/tests/des_replays_runtime.rs:
