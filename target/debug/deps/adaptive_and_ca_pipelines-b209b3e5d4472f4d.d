/root/repo/target/debug/deps/adaptive_and_ca_pipelines-b209b3e5d4472f4d.d: tests/tests/adaptive_and_ca_pipelines.rs Cargo.toml

/root/repo/target/debug/deps/libadaptive_and_ca_pipelines-b209b3e5d4472f4d.rmeta: tests/tests/adaptive_and_ca_pipelines.rs Cargo.toml

tests/tests/adaptive_and_ca_pipelines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
