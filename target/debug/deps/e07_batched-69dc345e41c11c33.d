/root/repo/target/debug/deps/e07_batched-69dc345e41c11c33.d: crates/bench/src/bin/e07_batched.rs

/root/repo/target/debug/deps/e07_batched-69dc345e41c11c33: crates/bench/src/bin/e07_batched.rs

crates/bench/src/bin/e07_batched.rs:
