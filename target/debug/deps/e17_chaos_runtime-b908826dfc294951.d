/root/repo/target/debug/deps/e17_chaos_runtime-b908826dfc294951.d: crates/bench/src/bin/e17_chaos_runtime.rs Cargo.toml

/root/repo/target/debug/deps/libe17_chaos_runtime-b908826dfc294951.rmeta: crates/bench/src/bin/e17_chaos_runtime.rs Cargo.toml

crates/bench/src/bin/e17_chaos_runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
