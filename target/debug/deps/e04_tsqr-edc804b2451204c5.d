/root/repo/target/debug/deps/e04_tsqr-edc804b2451204c5.d: crates/bench/src/bin/e04_tsqr.rs

/root/repo/target/debug/deps/e04_tsqr-edc804b2451204c5: crates/bench/src/bin/e04_tsqr.rs

crates/bench/src/bin/e04_tsqr.rs:
