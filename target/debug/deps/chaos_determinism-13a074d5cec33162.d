/root/repo/target/debug/deps/chaos_determinism-13a074d5cec33162.d: tests/tests/chaos_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_determinism-13a074d5cec33162.rmeta: tests/tests/chaos_determinism.rs Cargo.toml

tests/tests/chaos_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
