/root/repo/target/debug/deps/e01_hpl_vs_hpcg-a29e8e1f7cf03dfe.d: crates/bench/src/bin/e01_hpl_vs_hpcg.rs Cargo.toml

/root/repo/target/debug/deps/libe01_hpl_vs_hpcg-a29e8e1f7cf03dfe.rmeta: crates/bench/src/bin/e01_hpl_vs_hpcg.rs Cargo.toml

crates/bench/src/bin/e01_hpl_vs_hpcg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
