/root/repo/target/debug/deps/e02_dag_vs_forkjoin-c9feaa4de0a0747a.d: crates/bench/src/bin/e02_dag_vs_forkjoin.rs Cargo.toml

/root/repo/target/debug/deps/libe02_dag_vs_forkjoin-c9feaa4de0a0747a.rmeta: crates/bench/src/bin/e02_dag_vs_forkjoin.rs Cargo.toml

crates/bench/src/bin/e02_dag_vs_forkjoin.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
