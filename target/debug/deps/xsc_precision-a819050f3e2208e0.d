/root/repo/target/debug/deps/xsc_precision-a819050f3e2208e0.d: crates/precision/src/lib.rs crates/precision/src/adaptive.rs crates/precision/src/gmres_ir.rs crates/precision/src/half.rs crates/precision/src/ir.rs

/root/repo/target/debug/deps/libxsc_precision-a819050f3e2208e0.rlib: crates/precision/src/lib.rs crates/precision/src/adaptive.rs crates/precision/src/gmres_ir.rs crates/precision/src/half.rs crates/precision/src/ir.rs

/root/repo/target/debug/deps/libxsc_precision-a819050f3e2208e0.rmeta: crates/precision/src/lib.rs crates/precision/src/adaptive.rs crates/precision/src/gmres_ir.rs crates/precision/src/half.rs crates/precision/src/ir.rs

crates/precision/src/lib.rs:
crates/precision/src/adaptive.rs:
crates/precision/src/gmres_ir.rs:
crates/precision/src/half.rs:
crates/precision/src/ir.rs:
