/root/repo/target/debug/deps/e03_mixed_precision-749192ca51410265.d: crates/bench/src/bin/e03_mixed_precision.rs

/root/repo/target/debug/deps/e03_mixed_precision-749192ca51410265: crates/bench/src/bin/e03_mixed_precision.rs

crates/bench/src/bin/e03_mixed_precision.rs:
