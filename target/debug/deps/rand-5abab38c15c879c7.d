/root/repo/target/debug/deps/rand-5abab38c15c879c7.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-5abab38c15c879c7.rlib: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-5abab38c15c879c7.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
