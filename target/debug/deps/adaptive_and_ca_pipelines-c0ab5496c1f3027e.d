/root/repo/target/debug/deps/adaptive_and_ca_pipelines-c0ab5496c1f3027e.d: tests/tests/adaptive_and_ca_pipelines.rs

/root/repo/target/debug/deps/adaptive_and_ca_pipelines-c0ab5496c1f3027e: tests/tests/adaptive_and_ca_pipelines.rs

tests/tests/adaptive_and_ca_pipelines.rs:
