/root/repo/target/debug/deps/xsc_ft-27cf1a64dfa39a68.d: crates/ft/src/lib.rs crates/ft/src/abft.rs crates/ft/src/checkpoint.rs crates/ft/src/inject.rs crates/ft/src/plan.rs

/root/repo/target/debug/deps/libxsc_ft-27cf1a64dfa39a68.rlib: crates/ft/src/lib.rs crates/ft/src/abft.rs crates/ft/src/checkpoint.rs crates/ft/src/inject.rs crates/ft/src/plan.rs

/root/repo/target/debug/deps/libxsc_ft-27cf1a64dfa39a68.rmeta: crates/ft/src/lib.rs crates/ft/src/abft.rs crates/ft/src/checkpoint.rs crates/ft/src/inject.rs crates/ft/src/plan.rs

crates/ft/src/lib.rs:
crates/ft/src/abft.rs:
crates/ft/src/checkpoint.rs:
crates/ft/src/inject.rs:
crates/ft/src/plan.rs:
