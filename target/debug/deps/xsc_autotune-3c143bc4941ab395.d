/root/repo/target/debug/deps/xsc_autotune-3c143bc4941ab395.d: crates/autotune/src/lib.rs

/root/repo/target/debug/deps/xsc_autotune-3c143bc4941ab395: crates/autotune/src/lib.rs

crates/autotune/src/lib.rs:
