/root/repo/target/debug/deps/e12_resilience_cg-3a1f171c7f7e35ba.d: crates/bench/src/bin/e12_resilience_cg.rs Cargo.toml

/root/repo/target/debug/deps/libe12_resilience_cg-3a1f171c7f7e35ba.rmeta: crates/bench/src/bin/e12_resilience_cg.rs Cargo.toml

crates/bench/src/bin/e12_resilience_cg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
