/root/repo/target/debug/deps/adaptive_and_ca_pipelines-2a7d90d73af11581.d: tests/tests/adaptive_and_ca_pipelines.rs

/root/repo/target/debug/deps/adaptive_and_ca_pipelines-2a7d90d73af11581: tests/tests/adaptive_and_ca_pipelines.rs

tests/tests/adaptive_and_ca_pipelines.rs:
