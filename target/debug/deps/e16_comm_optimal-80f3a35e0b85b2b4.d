/root/repo/target/debug/deps/e16_comm_optimal-80f3a35e0b85b2b4.d: crates/bench/src/bin/e16_comm_optimal.rs

/root/repo/target/debug/deps/e16_comm_optimal-80f3a35e0b85b2b4: crates/bench/src/bin/e16_comm_optimal.rs

crates/bench/src/bin/e16_comm_optimal.rs:
