/root/repo/target/debug/deps/rayon-ec029d8361b7fc63.d: crates/shims/rayon/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librayon-ec029d8361b7fc63.rmeta: crates/shims/rayon/src/lib.rs Cargo.toml

crates/shims/rayon/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
