/root/repo/target/debug/deps/e14_calu-28ab1343f4975397.d: crates/bench/src/bin/e14_calu.rs

/root/repo/target/debug/deps/e14_calu-28ab1343f4975397: crates/bench/src/bin/e14_calu.rs

crates/bench/src/bin/e14_calu.rs:
