/root/repo/target/debug/deps/parking_lot-4b3ffbbac644a667.d: crates/shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-4b3ffbbac644a667: crates/shims/parking_lot/src/lib.rs

crates/shims/parking_lot/src/lib.rs:
