/root/repo/target/debug/deps/e01_hpl_vs_hpcg-263fad7c9cfe100d.d: crates/bench/src/bin/e01_hpl_vs_hpcg.rs

/root/repo/target/debug/deps/e01_hpl_vs_hpcg-263fad7c9cfe100d: crates/bench/src/bin/e01_hpl_vs_hpcg.rs

crates/bench/src/bin/e01_hpl_vs_hpcg.rs:
