/root/repo/target/debug/deps/e16_comm_optimal-8f47a7f1af2390ff.d: crates/bench/src/bin/e16_comm_optimal.rs

/root/repo/target/debug/deps/e16_comm_optimal-8f47a7f1af2390ff: crates/bench/src/bin/e16_comm_optimal.rs

crates/bench/src/bin/e16_comm_optimal.rs:
