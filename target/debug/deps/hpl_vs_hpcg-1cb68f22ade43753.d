/root/repo/target/debug/deps/hpl_vs_hpcg-1cb68f22ade43753.d: examples/hpl_vs_hpcg.rs Cargo.toml

/root/repo/target/debug/deps/libhpl_vs_hpcg-1cb68f22ade43753.rmeta: examples/hpl_vs_hpcg.rs Cargo.toml

examples/hpl_vs_hpcg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
