/root/repo/target/debug/deps/e06_abft-7cc38fec5eb24b6d.d: crates/bench/src/bin/e06_abft.rs Cargo.toml

/root/repo/target/debug/deps/libe06_abft-7cc38fec5eb24b6d.rmeta: crates/bench/src/bin/e06_abft.rs Cargo.toml

crates/bench/src/bin/e06_abft.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
