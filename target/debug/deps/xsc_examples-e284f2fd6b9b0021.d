/root/repo/target/debug/deps/xsc_examples-e284f2fd6b9b0021.d: examples/lib.rs

/root/repo/target/debug/deps/libxsc_examples-e284f2fd6b9b0021.rlib: examples/lib.rs

/root/repo/target/debug/deps/libxsc_examples-e284f2fd6b9b0021.rmeta: examples/lib.rs

examples/lib.rs:
