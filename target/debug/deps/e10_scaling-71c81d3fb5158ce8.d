/root/repo/target/debug/deps/e10_scaling-71c81d3fb5158ce8.d: crates/bench/src/bin/e10_scaling.rs

/root/repo/target/debug/deps/e10_scaling-71c81d3fb5158ce8: crates/bench/src/bin/e10_scaling.rs

crates/bench/src/bin/e10_scaling.rs:
