/root/repo/target/debug/deps/e05_energy_table-cf9929017d306d85.d: crates/bench/src/bin/e05_energy_table.rs Cargo.toml

/root/repo/target/debug/deps/libe05_energy_table-cf9929017d306d85.rmeta: crates/bench/src/bin/e05_energy_table.rs Cargo.toml

crates/bench/src/bin/e05_energy_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
