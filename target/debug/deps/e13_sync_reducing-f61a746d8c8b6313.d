/root/repo/target/debug/deps/e13_sync_reducing-f61a746d8c8b6313.d: crates/bench/src/bin/e13_sync_reducing.rs Cargo.toml

/root/repo/target/debug/deps/libe13_sync_reducing-f61a746d8c8b6313.rmeta: crates/bench/src/bin/e13_sync_reducing.rs Cargo.toml

crates/bench/src/bin/e13_sync_reducing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
