/root/repo/target/debug/deps/e15_colored_smoother-a1e244c11475a676.d: crates/bench/src/bin/e15_colored_smoother.rs Cargo.toml

/root/repo/target/debug/deps/libe15_colored_smoother-a1e244c11475a676.rmeta: crates/bench/src/bin/e15_colored_smoother.rs Cargo.toml

crates/bench/src/bin/e15_colored_smoother.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
