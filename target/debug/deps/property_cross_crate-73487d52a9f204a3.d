/root/repo/target/debug/deps/property_cross_crate-73487d52a9f204a3.d: tests/tests/property_cross_crate.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_cross_crate-73487d52a9f204a3.rmeta: tests/tests/property_cross_crate.rs Cargo.toml

tests/tests/property_cross_crate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
