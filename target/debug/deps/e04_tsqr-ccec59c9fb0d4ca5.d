/root/repo/target/debug/deps/e04_tsqr-ccec59c9fb0d4ca5.d: crates/bench/src/bin/e04_tsqr.rs

/root/repo/target/debug/deps/e04_tsqr-ccec59c9fb0d4ca5: crates/bench/src/bin/e04_tsqr.rs

crates/bench/src/bin/e04_tsqr.rs:
