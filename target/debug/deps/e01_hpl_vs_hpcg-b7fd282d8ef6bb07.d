/root/repo/target/debug/deps/e01_hpl_vs_hpcg-b7fd282d8ef6bb07.d: crates/bench/src/bin/e01_hpl_vs_hpcg.rs

/root/repo/target/debug/deps/e01_hpl_vs_hpcg-b7fd282d8ef6bb07: crates/bench/src/bin/e01_hpl_vs_hpcg.rs

crates/bench/src/bin/e01_hpl_vs_hpcg.rs:
