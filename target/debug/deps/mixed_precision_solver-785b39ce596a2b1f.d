/root/repo/target/debug/deps/mixed_precision_solver-785b39ce596a2b1f.d: examples/mixed_precision_solver.rs

/root/repo/target/debug/deps/mixed_precision_solver-785b39ce596a2b1f: examples/mixed_precision_solver.rs

examples/mixed_precision_solver.rs:
