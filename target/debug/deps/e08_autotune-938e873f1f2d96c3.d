/root/repo/target/debug/deps/e08_autotune-938e873f1f2d96c3.d: crates/bench/src/bin/e08_autotune.rs

/root/repo/target/debug/deps/e08_autotune-938e873f1f2d96c3: crates/bench/src/bin/e08_autotune.rs

crates/bench/src/bin/e08_autotune.rs:
