/root/repo/target/debug/deps/e08_autotune-a5d3afa92a35ee8f.d: crates/bench/src/bin/e08_autotune.rs

/root/repo/target/debug/deps/e08_autotune-a5d3afa92a35ee8f: crates/bench/src/bin/e08_autotune.rs

crates/bench/src/bin/e08_autotune.rs:
