/root/repo/target/debug/deps/e15_colored_smoother-212c367db30d5dc7.d: crates/bench/src/bin/e15_colored_smoother.rs

/root/repo/target/debug/deps/e15_colored_smoother-212c367db30d5dc7: crates/bench/src/bin/e15_colored_smoother.rs

crates/bench/src/bin/e15_colored_smoother.rs:
