/root/repo/target/debug/deps/e09_rbt-46ebfaab648c1519.d: crates/bench/src/bin/e09_rbt.rs

/root/repo/target/debug/deps/e09_rbt-46ebfaab648c1519: crates/bench/src/bin/e09_rbt.rs

crates/bench/src/bin/e09_rbt.rs:
