/root/repo/target/debug/deps/e15_colored_smoother-d802b9e2ed10d329.d: crates/bench/src/bin/e15_colored_smoother.rs

/root/repo/target/debug/deps/e15_colored_smoother-d802b9e2ed10d329: crates/bench/src/bin/e15_colored_smoother.rs

crates/bench/src/bin/e15_colored_smoother.rs:
