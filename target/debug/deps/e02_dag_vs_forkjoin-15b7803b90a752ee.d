/root/repo/target/debug/deps/e02_dag_vs_forkjoin-15b7803b90a752ee.d: crates/bench/src/bin/e02_dag_vs_forkjoin.rs

/root/repo/target/debug/deps/e02_dag_vs_forkjoin-15b7803b90a752ee: crates/bench/src/bin/e02_dag_vs_forkjoin.rs

crates/bench/src/bin/e02_dag_vs_forkjoin.rs:
