/root/repo/target/debug/deps/fault_tolerant_factorization-5305d62ca3cbc9b4.d: examples/fault_tolerant_factorization.rs

/root/repo/target/debug/deps/fault_tolerant_factorization-5305d62ca3cbc9b4: examples/fault_tolerant_factorization.rs

examples/fault_tolerant_factorization.rs:
