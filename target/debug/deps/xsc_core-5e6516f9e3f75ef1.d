/root/repo/target/debug/deps/xsc_core-5e6516f9e3f75ef1.d: crates/core/src/lib.rs crates/core/src/blas1.rs crates/core/src/cond.rs crates/core/src/error.rs crates/core/src/factor.rs crates/core/src/flops.rs crates/core/src/gemm.rs crates/core/src/gen.rs crates/core/src/householder.rs crates/core/src/matrix.rs crates/core/src/norms.rs crates/core/src/scalar.rs crates/core/src/syrk.rs crates/core/src/tile.rs crates/core/src/trsm.rs Cargo.toml

/root/repo/target/debug/deps/libxsc_core-5e6516f9e3f75ef1.rmeta: crates/core/src/lib.rs crates/core/src/blas1.rs crates/core/src/cond.rs crates/core/src/error.rs crates/core/src/factor.rs crates/core/src/flops.rs crates/core/src/gemm.rs crates/core/src/gen.rs crates/core/src/householder.rs crates/core/src/matrix.rs crates/core/src/norms.rs crates/core/src/scalar.rs crates/core/src/syrk.rs crates/core/src/tile.rs crates/core/src/trsm.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/blas1.rs:
crates/core/src/cond.rs:
crates/core/src/error.rs:
crates/core/src/factor.rs:
crates/core/src/flops.rs:
crates/core/src/gemm.rs:
crates/core/src/gen.rs:
crates/core/src/householder.rs:
crates/core/src/matrix.rs:
crates/core/src/norms.rs:
crates/core/src/scalar.rs:
crates/core/src/syrk.rs:
crates/core/src/tile.rs:
crates/core/src/trsm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
