/root/repo/target/debug/deps/e03_mixed_precision-2348198ed60b974b.d: crates/bench/src/bin/e03_mixed_precision.rs

/root/repo/target/debug/deps/e03_mixed_precision-2348198ed60b974b: crates/bench/src/bin/e03_mixed_precision.rs

crates/bench/src/bin/e03_mixed_precision.rs:
