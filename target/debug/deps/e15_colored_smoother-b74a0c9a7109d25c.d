/root/repo/target/debug/deps/e15_colored_smoother-b74a0c9a7109d25c.d: crates/bench/src/bin/e15_colored_smoother.rs Cargo.toml

/root/repo/target/debug/deps/libe15_colored_smoother-b74a0c9a7109d25c.rmeta: crates/bench/src/bin/e15_colored_smoother.rs Cargo.toml

crates/bench/src/bin/e15_colored_smoother.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
