/root/repo/target/debug/deps/quickstart-5e97ad81215fb62a.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-5e97ad81215fb62a.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
