/root/repo/target/debug/deps/factorization_pipelines-e6e1c92b9621a893.d: tests/tests/factorization_pipelines.rs

/root/repo/target/debug/deps/factorization_pipelines-e6e1c92b9621a893: tests/tests/factorization_pipelines.rs

tests/tests/factorization_pipelines.rs:
