/root/repo/target/debug/deps/e04_tsqr-3604852538c1ef51.d: crates/bench/src/bin/e04_tsqr.rs Cargo.toml

/root/repo/target/debug/deps/libe04_tsqr-3604852538c1ef51.rmeta: crates/bench/src/bin/e04_tsqr.rs Cargo.toml

crates/bench/src/bin/e04_tsqr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
