/root/repo/target/debug/deps/factorization_pipelines-e6b91793f9c160df.d: tests/tests/factorization_pipelines.rs

/root/repo/target/debug/deps/factorization_pipelines-e6b91793f9c160df: tests/tests/factorization_pipelines.rs

tests/tests/factorization_pipelines.rs:
