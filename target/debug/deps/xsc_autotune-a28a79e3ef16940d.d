/root/repo/target/debug/deps/xsc_autotune-a28a79e3ef16940d.d: crates/autotune/src/lib.rs crates/autotune/src/gemm_tune.rs

/root/repo/target/debug/deps/libxsc_autotune-a28a79e3ef16940d.rlib: crates/autotune/src/lib.rs crates/autotune/src/gemm_tune.rs

/root/repo/target/debug/deps/libxsc_autotune-a28a79e3ef16940d.rmeta: crates/autotune/src/lib.rs crates/autotune/src/gemm_tune.rs

crates/autotune/src/lib.rs:
crates/autotune/src/gemm_tune.rs:
