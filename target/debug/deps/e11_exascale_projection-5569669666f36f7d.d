/root/repo/target/debug/deps/e11_exascale_projection-5569669666f36f7d.d: crates/bench/src/bin/e11_exascale_projection.rs Cargo.toml

/root/repo/target/debug/deps/libe11_exascale_projection-5569669666f36f7d.rmeta: crates/bench/src/bin/e11_exascale_projection.rs Cargo.toml

crates/bench/src/bin/e11_exascale_projection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
