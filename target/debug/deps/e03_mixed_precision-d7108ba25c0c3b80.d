/root/repo/target/debug/deps/e03_mixed_precision-d7108ba25c0c3b80.d: crates/bench/src/bin/e03_mixed_precision.rs Cargo.toml

/root/repo/target/debug/deps/libe03_mixed_precision-d7108ba25c0c3b80.rmeta: crates/bench/src/bin/e03_mixed_precision.rs Cargo.toml

crates/bench/src/bin/e03_mixed_precision.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
