/root/repo/target/debug/deps/e07_batched-7f3060c27e049563.d: crates/bench/src/bin/e07_batched.rs Cargo.toml

/root/repo/target/debug/deps/libe07_batched-7f3060c27e049563.rmeta: crates/bench/src/bin/e07_batched.rs Cargo.toml

crates/bench/src/bin/e07_batched.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
