/root/repo/target/debug/deps/e07_batched-3449d44614097386.d: crates/bench/src/bin/e07_batched.rs Cargo.toml

/root/repo/target/debug/deps/libe07_batched-3449d44614097386.rmeta: crates/bench/src/bin/e07_batched.rs Cargo.toml

crates/bench/src/bin/e07_batched.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
