/root/repo/target/debug/deps/xsc_ft-885512dece832ac1.d: crates/ft/src/lib.rs crates/ft/src/abft.rs crates/ft/src/checkpoint.rs crates/ft/src/inject.rs crates/ft/src/plan.rs Cargo.toml

/root/repo/target/debug/deps/libxsc_ft-885512dece832ac1.rmeta: crates/ft/src/lib.rs crates/ft/src/abft.rs crates/ft/src/checkpoint.rs crates/ft/src/inject.rs crates/ft/src/plan.rs Cargo.toml

crates/ft/src/lib.rs:
crates/ft/src/abft.rs:
crates/ft/src/checkpoint.rs:
crates/ft/src/inject.rs:
crates/ft/src/plan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
