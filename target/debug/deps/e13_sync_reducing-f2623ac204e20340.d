/root/repo/target/debug/deps/e13_sync_reducing-f2623ac204e20340.d: crates/bench/src/bin/e13_sync_reducing.rs Cargo.toml

/root/repo/target/debug/deps/libe13_sync_reducing-f2623ac204e20340.rmeta: crates/bench/src/bin/e13_sync_reducing.rs Cargo.toml

crates/bench/src/bin/e13_sync_reducing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
