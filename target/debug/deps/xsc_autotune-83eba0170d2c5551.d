/root/repo/target/debug/deps/xsc_autotune-83eba0170d2c5551.d: crates/autotune/src/lib.rs

/root/repo/target/debug/deps/libxsc_autotune-83eba0170d2c5551.rlib: crates/autotune/src/lib.rs

/root/repo/target/debug/deps/libxsc_autotune-83eba0170d2c5551.rmeta: crates/autotune/src/lib.rs

crates/autotune/src/lib.rs:
