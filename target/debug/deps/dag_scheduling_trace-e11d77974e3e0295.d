/root/repo/target/debug/deps/dag_scheduling_trace-e11d77974e3e0295.d: examples/dag_scheduling_trace.rs

/root/repo/target/debug/deps/dag_scheduling_trace-e11d77974e3e0295: examples/dag_scheduling_trace.rs

examples/dag_scheduling_trace.rs:
