/root/repo/target/debug/deps/e11_exascale_projection-d6043a3376e3f782.d: crates/bench/src/bin/e11_exascale_projection.rs

/root/repo/target/debug/deps/e11_exascale_projection-d6043a3376e3f782: crates/bench/src/bin/e11_exascale_projection.rs

crates/bench/src/bin/e11_exascale_projection.rs:
