/root/repo/target/debug/deps/e14_calu-6f4999b1d8406b71.d: crates/bench/src/bin/e14_calu.rs

/root/repo/target/debug/deps/e14_calu-6f4999b1d8406b71: crates/bench/src/bin/e14_calu.rs

crates/bench/src/bin/e14_calu.rs:
