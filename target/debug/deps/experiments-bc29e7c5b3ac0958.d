/root/repo/target/debug/deps/experiments-bc29e7c5b3ac0958.d: crates/bench/benches/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-bc29e7c5b3ac0958.rmeta: crates/bench/benches/experiments.rs Cargo.toml

crates/bench/benches/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
