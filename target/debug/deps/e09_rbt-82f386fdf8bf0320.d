/root/repo/target/debug/deps/e09_rbt-82f386fdf8bf0320.d: crates/bench/src/bin/e09_rbt.rs

/root/repo/target/debug/deps/e09_rbt-82f386fdf8bf0320: crates/bench/src/bin/e09_rbt.rs

crates/bench/src/bin/e09_rbt.rs:
