/root/repo/target/debug/deps/end_to_end_benchmarks-045fd92c32e879f8.d: tests/tests/end_to_end_benchmarks.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_benchmarks-045fd92c32e879f8.rmeta: tests/tests/end_to_end_benchmarks.rs Cargo.toml

tests/tests/end_to_end_benchmarks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
