/root/repo/target/debug/deps/e03_mixed_precision-593ee3b584ee598f.d: crates/bench/src/bin/e03_mixed_precision.rs Cargo.toml

/root/repo/target/debug/deps/libe03_mixed_precision-593ee3b584ee598f.rmeta: crates/bench/src/bin/e03_mixed_precision.rs Cargo.toml

crates/bench/src/bin/e03_mixed_precision.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
