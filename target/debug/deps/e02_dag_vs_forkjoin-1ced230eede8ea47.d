/root/repo/target/debug/deps/e02_dag_vs_forkjoin-1ced230eede8ea47.d: crates/bench/src/bin/e02_dag_vs_forkjoin.rs Cargo.toml

/root/repo/target/debug/deps/libe02_dag_vs_forkjoin-1ced230eede8ea47.rmeta: crates/bench/src/bin/e02_dag_vs_forkjoin.rs Cargo.toml

crates/bench/src/bin/e02_dag_vs_forkjoin.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
