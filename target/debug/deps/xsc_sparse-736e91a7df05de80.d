/root/repo/target/debug/deps/xsc_sparse-736e91a7df05de80.d: crates/sparse/src/lib.rs crates/sparse/src/cg.rs crates/sparse/src/chebyshev.rs crates/sparse/src/coloring.rs crates/sparse/src/csr.rs crates/sparse/src/hpcg.rs crates/sparse/src/matrix_powers.rs crates/sparse/src/mg.rs crates/sparse/src/pipelined.rs crates/sparse/src/sstep.rs crates/sparse/src/stencil.rs crates/sparse/src/symgs.rs

/root/repo/target/debug/deps/libxsc_sparse-736e91a7df05de80.rlib: crates/sparse/src/lib.rs crates/sparse/src/cg.rs crates/sparse/src/chebyshev.rs crates/sparse/src/coloring.rs crates/sparse/src/csr.rs crates/sparse/src/hpcg.rs crates/sparse/src/matrix_powers.rs crates/sparse/src/mg.rs crates/sparse/src/pipelined.rs crates/sparse/src/sstep.rs crates/sparse/src/stencil.rs crates/sparse/src/symgs.rs

/root/repo/target/debug/deps/libxsc_sparse-736e91a7df05de80.rmeta: crates/sparse/src/lib.rs crates/sparse/src/cg.rs crates/sparse/src/chebyshev.rs crates/sparse/src/coloring.rs crates/sparse/src/csr.rs crates/sparse/src/hpcg.rs crates/sparse/src/matrix_powers.rs crates/sparse/src/mg.rs crates/sparse/src/pipelined.rs crates/sparse/src/sstep.rs crates/sparse/src/stencil.rs crates/sparse/src/symgs.rs

crates/sparse/src/lib.rs:
crates/sparse/src/cg.rs:
crates/sparse/src/chebyshev.rs:
crates/sparse/src/coloring.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/hpcg.rs:
crates/sparse/src/matrix_powers.rs:
crates/sparse/src/mg.rs:
crates/sparse/src/pipelined.rs:
crates/sparse/src/sstep.rs:
crates/sparse/src/stencil.rs:
crates/sparse/src/symgs.rs:
