/root/repo/target/debug/deps/e12_resilience_cg-d84aaf1a867f7eb1.d: crates/bench/src/bin/e12_resilience_cg.rs

/root/repo/target/debug/deps/e12_resilience_cg-d84aaf1a867f7eb1: crates/bench/src/bin/e12_resilience_cg.rs

crates/bench/src/bin/e12_resilience_cg.rs:
