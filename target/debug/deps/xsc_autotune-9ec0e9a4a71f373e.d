/root/repo/target/debug/deps/xsc_autotune-9ec0e9a4a71f373e.d: crates/autotune/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxsc_autotune-9ec0e9a4a71f373e.rmeta: crates/autotune/src/lib.rs Cargo.toml

crates/autotune/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
