/root/repo/target/debug/deps/proptest-b4f200b092c4039a.d: crates/shims/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-b4f200b092c4039a.rmeta: crates/shims/proptest/src/lib.rs Cargo.toml

crates/shims/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
