/root/repo/target/debug/deps/rand-464e085007a6ca9f.d: crates/shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-464e085007a6ca9f.rmeta: crates/shims/rand/src/lib.rs Cargo.toml

crates/shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
