/root/repo/target/debug/deps/e16_comm_optimal-f9ac0864836d7edc.d: crates/bench/src/bin/e16_comm_optimal.rs Cargo.toml

/root/repo/target/debug/deps/libe16_comm_optimal-f9ac0864836d7edc.rmeta: crates/bench/src/bin/e16_comm_optimal.rs Cargo.toml

crates/bench/src/bin/e16_comm_optimal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
