/root/repo/target/debug/deps/xsc_dense-ffa5e92784ce44e5.d: crates/dense/src/lib.rs crates/dense/src/calu.rs crates/dense/src/cholesky.rs crates/dense/src/hpl.rs crates/dense/src/lu.rs crates/dense/src/qr.rs crates/dense/src/rbt.rs crates/dense/src/resilient.rs crates/dense/src/tsqr.rs crates/dense/src/poison.rs

/root/repo/target/debug/deps/libxsc_dense-ffa5e92784ce44e5.rlib: crates/dense/src/lib.rs crates/dense/src/calu.rs crates/dense/src/cholesky.rs crates/dense/src/hpl.rs crates/dense/src/lu.rs crates/dense/src/qr.rs crates/dense/src/rbt.rs crates/dense/src/resilient.rs crates/dense/src/tsqr.rs crates/dense/src/poison.rs

/root/repo/target/debug/deps/libxsc_dense-ffa5e92784ce44e5.rmeta: crates/dense/src/lib.rs crates/dense/src/calu.rs crates/dense/src/cholesky.rs crates/dense/src/hpl.rs crates/dense/src/lu.rs crates/dense/src/qr.rs crates/dense/src/rbt.rs crates/dense/src/resilient.rs crates/dense/src/tsqr.rs crates/dense/src/poison.rs

crates/dense/src/lib.rs:
crates/dense/src/calu.rs:
crates/dense/src/cholesky.rs:
crates/dense/src/hpl.rs:
crates/dense/src/lu.rs:
crates/dense/src/qr.rs:
crates/dense/src/rbt.rs:
crates/dense/src/resilient.rs:
crates/dense/src/tsqr.rs:
crates/dense/src/poison.rs:
