/root/repo/target/debug/deps/end_to_end_benchmarks-f7f8117325bf518b.d: tests/tests/end_to_end_benchmarks.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_benchmarks-f7f8117325bf518b.rmeta: tests/tests/end_to_end_benchmarks.rs Cargo.toml

tests/tests/end_to_end_benchmarks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
