/root/repo/target/debug/deps/resilience_and_precision-dd3487318bf3d4d5.d: tests/tests/resilience_and_precision.rs Cargo.toml

/root/repo/target/debug/deps/libresilience_and_precision-dd3487318bf3d4d5.rmeta: tests/tests/resilience_and_precision.rs Cargo.toml

tests/tests/resilience_and_precision.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
