/root/repo/target/debug/deps/criterion-a81952a52a52b7b0.d: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-a81952a52a52b7b0: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
