/root/repo/target/debug/deps/fault_tolerant_factorization-2c537ebc007b822c.d: examples/fault_tolerant_factorization.rs

/root/repo/target/debug/deps/fault_tolerant_factorization-2c537ebc007b822c: examples/fault_tolerant_factorization.rs

examples/fault_tolerant_factorization.rs:
