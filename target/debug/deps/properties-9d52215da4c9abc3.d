/root/repo/target/debug/deps/properties-9d52215da4c9abc3.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-9d52215da4c9abc3: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
