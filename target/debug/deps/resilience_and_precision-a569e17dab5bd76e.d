/root/repo/target/debug/deps/resilience_and_precision-a569e17dab5bd76e.d: tests/tests/resilience_and_precision.rs

/root/repo/target/debug/deps/resilience_and_precision-a569e17dab5bd76e: tests/tests/resilience_and_precision.rs

tests/tests/resilience_and_precision.rs:
