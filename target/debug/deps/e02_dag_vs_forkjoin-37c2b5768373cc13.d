/root/repo/target/debug/deps/e02_dag_vs_forkjoin-37c2b5768373cc13.d: crates/bench/src/bin/e02_dag_vs_forkjoin.rs

/root/repo/target/debug/deps/e02_dag_vs_forkjoin-37c2b5768373cc13: crates/bench/src/bin/e02_dag_vs_forkjoin.rs

crates/bench/src/bin/e02_dag_vs_forkjoin.rs:
