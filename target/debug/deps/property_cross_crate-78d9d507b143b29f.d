/root/repo/target/debug/deps/property_cross_crate-78d9d507b143b29f.d: tests/tests/property_cross_crate.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_cross_crate-78d9d507b143b29f.rmeta: tests/tests/property_cross_crate.rs Cargo.toml

tests/tests/property_cross_crate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
