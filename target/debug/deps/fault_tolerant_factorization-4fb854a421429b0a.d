/root/repo/target/debug/deps/fault_tolerant_factorization-4fb854a421429b0a.d: examples/fault_tolerant_factorization.rs Cargo.toml

/root/repo/target/debug/deps/libfault_tolerant_factorization-4fb854a421429b0a.rmeta: examples/fault_tolerant_factorization.rs Cargo.toml

examples/fault_tolerant_factorization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
