/root/repo/target/debug/deps/e04_tsqr-104c8532d5d6ddd3.d: crates/bench/src/bin/e04_tsqr.rs

/root/repo/target/debug/deps/e04_tsqr-104c8532d5d6ddd3: crates/bench/src/bin/e04_tsqr.rs

crates/bench/src/bin/e04_tsqr.rs:
