/root/repo/target/debug/deps/factorization_pipelines-9583f9f74e9b1787.d: tests/tests/factorization_pipelines.rs

/root/repo/target/debug/deps/factorization_pipelines-9583f9f74e9b1787: tests/tests/factorization_pipelines.rs

tests/tests/factorization_pipelines.rs:
