/root/repo/target/debug/deps/gemm_perf-99532a11bf1b281f.d: crates/core/tests/gemm_perf.rs Cargo.toml

/root/repo/target/debug/deps/libgemm_perf-99532a11bf1b281f.rmeta: crates/core/tests/gemm_perf.rs Cargo.toml

crates/core/tests/gemm_perf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
