/root/repo/target/debug/deps/e13_sync_reducing-6a6ef6e73d8876f8.d: crates/bench/src/bin/e13_sync_reducing.rs

/root/repo/target/debug/deps/e13_sync_reducing-6a6ef6e73d8876f8: crates/bench/src/bin/e13_sync_reducing.rs

crates/bench/src/bin/e13_sync_reducing.rs:
