/root/repo/target/debug/deps/e10_scaling-4f8b3b431ce194d9.d: crates/bench/src/bin/e10_scaling.rs

/root/repo/target/debug/deps/e10_scaling-4f8b3b431ce194d9: crates/bench/src/bin/e10_scaling.rs

crates/bench/src/bin/e10_scaling.rs:
