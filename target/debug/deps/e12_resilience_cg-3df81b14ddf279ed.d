/root/repo/target/debug/deps/e12_resilience_cg-3df81b14ddf279ed.d: crates/bench/src/bin/e12_resilience_cg.rs Cargo.toml

/root/repo/target/debug/deps/libe12_resilience_cg-3df81b14ddf279ed.rmeta: crates/bench/src/bin/e12_resilience_cg.rs Cargo.toml

crates/bench/src/bin/e12_resilience_cg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
