/root/repo/target/debug/deps/adaptive_and_ca_pipelines-3c8ffbf93736159a.d: tests/tests/adaptive_and_ca_pipelines.rs

/root/repo/target/debug/deps/adaptive_and_ca_pipelines-3c8ffbf93736159a: tests/tests/adaptive_and_ca_pipelines.rs

tests/tests/adaptive_and_ca_pipelines.rs:
