/root/repo/target/debug/deps/e10_scaling-c64fa212fb602eb0.d: crates/bench/src/bin/e10_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libe10_scaling-c64fa212fb602eb0.rmeta: crates/bench/src/bin/e10_scaling.rs Cargo.toml

crates/bench/src/bin/e10_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
