/root/repo/target/debug/deps/proptest-6e7c8146d0a7b221.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-6e7c8146d0a7b221.rlib: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-6e7c8146d0a7b221.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
