/root/repo/target/debug/deps/e11_exascale_projection-7819b5a2ca4e3120.d: crates/bench/src/bin/e11_exascale_projection.rs Cargo.toml

/root/repo/target/debug/deps/libe11_exascale_projection-7819b5a2ca4e3120.rmeta: crates/bench/src/bin/e11_exascale_projection.rs Cargo.toml

crates/bench/src/bin/e11_exascale_projection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
