/root/repo/target/debug/deps/xsc_ft-5dfd2d5f201b6a78.d: crates/ft/src/lib.rs crates/ft/src/abft.rs crates/ft/src/checkpoint.rs crates/ft/src/inject.rs

/root/repo/target/debug/deps/libxsc_ft-5dfd2d5f201b6a78.rlib: crates/ft/src/lib.rs crates/ft/src/abft.rs crates/ft/src/checkpoint.rs crates/ft/src/inject.rs

/root/repo/target/debug/deps/libxsc_ft-5dfd2d5f201b6a78.rmeta: crates/ft/src/lib.rs crates/ft/src/abft.rs crates/ft/src/checkpoint.rs crates/ft/src/inject.rs

crates/ft/src/lib.rs:
crates/ft/src/abft.rs:
crates/ft/src/checkpoint.rs:
crates/ft/src/inject.rs:
