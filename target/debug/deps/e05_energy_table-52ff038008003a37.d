/root/repo/target/debug/deps/e05_energy_table-52ff038008003a37.d: crates/bench/src/bin/e05_energy_table.rs Cargo.toml

/root/repo/target/debug/deps/libe05_energy_table-52ff038008003a37.rmeta: crates/bench/src/bin/e05_energy_table.rs Cargo.toml

crates/bench/src/bin/e05_energy_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
