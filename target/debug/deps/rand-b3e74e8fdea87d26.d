/root/repo/target/debug/deps/rand-b3e74e8fdea87d26.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-b3e74e8fdea87d26.rlib: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-b3e74e8fdea87d26.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
