/root/repo/target/debug/deps/des_replays_runtime-925a2d9c33a72000.d: tests/tests/des_replays_runtime.rs Cargo.toml

/root/repo/target/debug/deps/libdes_replays_runtime-925a2d9c33a72000.rmeta: tests/tests/des_replays_runtime.rs Cargo.toml

tests/tests/des_replays_runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
