/root/repo/target/debug/deps/xsc_ft-f9107432689d0e90.d: crates/ft/src/lib.rs crates/ft/src/abft.rs crates/ft/src/checkpoint.rs crates/ft/src/inject.rs

/root/repo/target/debug/deps/xsc_ft-f9107432689d0e90: crates/ft/src/lib.rs crates/ft/src/abft.rs crates/ft/src/checkpoint.rs crates/ft/src/inject.rs

crates/ft/src/lib.rs:
crates/ft/src/abft.rs:
crates/ft/src/checkpoint.rs:
crates/ft/src/inject.rs:
