/root/repo/target/debug/deps/e04_tsqr-53e919fd0e3f9a3d.d: crates/bench/src/bin/e04_tsqr.rs Cargo.toml

/root/repo/target/debug/deps/libe04_tsqr-53e919fd0e3f9a3d.rmeta: crates/bench/src/bin/e04_tsqr.rs Cargo.toml

crates/bench/src/bin/e04_tsqr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
