/root/repo/target/debug/deps/e11_exascale_projection-2e9f2c7800e8b6c5.d: crates/bench/src/bin/e11_exascale_projection.rs

/root/repo/target/debug/deps/e11_exascale_projection-2e9f2c7800e8b6c5: crates/bench/src/bin/e11_exascale_projection.rs

crates/bench/src/bin/e11_exascale_projection.rs:
