/root/repo/target/debug/deps/e05_energy_table-cb6e7a381746abc4.d: crates/bench/src/bin/e05_energy_table.rs

/root/repo/target/debug/deps/e05_energy_table-cb6e7a381746abc4: crates/bench/src/bin/e05_energy_table.rs

crates/bench/src/bin/e05_energy_table.rs:
