/root/repo/target/debug/deps/e12_resilience_cg-62ade175f9f3c115.d: crates/bench/src/bin/e12_resilience_cg.rs

/root/repo/target/debug/deps/e12_resilience_cg-62ade175f9f3c115: crates/bench/src/bin/e12_resilience_cg.rs

crates/bench/src/bin/e12_resilience_cg.rs:
