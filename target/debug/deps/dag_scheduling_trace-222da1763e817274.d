/root/repo/target/debug/deps/dag_scheduling_trace-222da1763e817274.d: examples/dag_scheduling_trace.rs

/root/repo/target/debug/deps/dag_scheduling_trace-222da1763e817274: examples/dag_scheduling_trace.rs

examples/dag_scheduling_trace.rs:
