/root/repo/target/debug/deps/e16_comm_optimal-0b85526f2d098c08.d: crates/bench/src/bin/e16_comm_optimal.rs Cargo.toml

/root/repo/target/debug/deps/libe16_comm_optimal-0b85526f2d098c08.rmeta: crates/bench/src/bin/e16_comm_optimal.rs Cargo.toml

crates/bench/src/bin/e16_comm_optimal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
