/root/repo/target/debug/deps/factorization_pipelines-7aef14f6a36c8583.d: tests/tests/factorization_pipelines.rs Cargo.toml

/root/repo/target/debug/deps/libfactorization_pipelines-7aef14f6a36c8583.rmeta: tests/tests/factorization_pipelines.rs Cargo.toml

tests/tests/factorization_pipelines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
