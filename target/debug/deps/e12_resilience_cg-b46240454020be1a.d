/root/repo/target/debug/deps/e12_resilience_cg-b46240454020be1a.d: crates/bench/src/bin/e12_resilience_cg.rs

/root/repo/target/debug/deps/e12_resilience_cg-b46240454020be1a: crates/bench/src/bin/e12_resilience_cg.rs

crates/bench/src/bin/e12_resilience_cg.rs:
