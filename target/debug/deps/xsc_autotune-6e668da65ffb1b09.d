/root/repo/target/debug/deps/xsc_autotune-6e668da65ffb1b09.d: crates/autotune/src/lib.rs crates/autotune/src/gemm_tune.rs

/root/repo/target/debug/deps/libxsc_autotune-6e668da65ffb1b09.rlib: crates/autotune/src/lib.rs crates/autotune/src/gemm_tune.rs

/root/repo/target/debug/deps/libxsc_autotune-6e668da65ffb1b09.rmeta: crates/autotune/src/lib.rs crates/autotune/src/gemm_tune.rs

crates/autotune/src/lib.rs:
crates/autotune/src/gemm_tune.rs:
