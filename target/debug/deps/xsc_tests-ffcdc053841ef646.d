/root/repo/target/debug/deps/xsc_tests-ffcdc053841ef646.d: tests/src/lib.rs

/root/repo/target/debug/deps/xsc_tests-ffcdc053841ef646: tests/src/lib.rs

tests/src/lib.rs:
