/root/repo/target/debug/deps/e06_abft-8849866cd5499864.d: crates/bench/src/bin/e06_abft.rs

/root/repo/target/debug/deps/e06_abft-8849866cd5499864: crates/bench/src/bin/e06_abft.rs

crates/bench/src/bin/e06_abft.rs:
