/root/repo/target/debug/deps/e05_energy_table-fb881afe0f46d0c0.d: crates/bench/src/bin/e05_energy_table.rs

/root/repo/target/debug/deps/e05_energy_table-fb881afe0f46d0c0: crates/bench/src/bin/e05_energy_table.rs

crates/bench/src/bin/e05_energy_table.rs:
