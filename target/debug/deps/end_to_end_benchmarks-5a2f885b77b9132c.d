/root/repo/target/debug/deps/end_to_end_benchmarks-5a2f885b77b9132c.d: tests/tests/end_to_end_benchmarks.rs

/root/repo/target/debug/deps/end_to_end_benchmarks-5a2f885b77b9132c: tests/tests/end_to_end_benchmarks.rs

tests/tests/end_to_end_benchmarks.rs:
