/root/repo/target/debug/deps/e10_scaling-e30b4fa830950fb0.d: crates/bench/src/bin/e10_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libe10_scaling-e30b4fa830950fb0.rmeta: crates/bench/src/bin/e10_scaling.rs Cargo.toml

crates/bench/src/bin/e10_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
