/root/repo/target/debug/deps/xsc_batched-0a9c712a6d34eb1a.d: crates/batched/src/lib.rs

/root/repo/target/debug/deps/xsc_batched-0a9c712a6d34eb1a: crates/batched/src/lib.rs

crates/batched/src/lib.rs:
