/root/repo/target/debug/deps/e07_batched-3422b4943c17b7cc.d: crates/bench/src/bin/e07_batched.rs

/root/repo/target/debug/deps/e07_batched-3422b4943c17b7cc: crates/bench/src/bin/e07_batched.rs

crates/bench/src/bin/e07_batched.rs:
