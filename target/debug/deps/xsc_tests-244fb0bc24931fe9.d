/root/repo/target/debug/deps/xsc_tests-244fb0bc24931fe9.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxsc_tests-244fb0bc24931fe9.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
