/root/repo/target/debug/deps/property_cross_crate-5e3c462975b927cc.d: tests/tests/property_cross_crate.rs

/root/repo/target/debug/deps/property_cross_crate-5e3c462975b927cc: tests/tests/property_cross_crate.rs

tests/tests/property_cross_crate.rs:
