/root/repo/target/debug/deps/experiments-c8b80abdca2a9f6c.d: crates/bench/benches/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-c8b80abdca2a9f6c.rmeta: crates/bench/benches/experiments.rs Cargo.toml

crates/bench/benches/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
