/root/repo/target/debug/deps/e03_mixed_precision-a23cfcefad0e0dc7.d: crates/bench/src/bin/e03_mixed_precision.rs

/root/repo/target/debug/deps/e03_mixed_precision-a23cfcefad0e0dc7: crates/bench/src/bin/e03_mixed_precision.rs

crates/bench/src/bin/e03_mixed_precision.rs:
