/root/repo/target/debug/deps/resilience_and_precision-90108f38effd3ba7.d: tests/tests/resilience_and_precision.rs

/root/repo/target/debug/deps/resilience_and_precision-90108f38effd3ba7: tests/tests/resilience_and_precision.rs

tests/tests/resilience_and_precision.rs:
