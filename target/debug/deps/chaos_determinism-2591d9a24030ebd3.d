/root/repo/target/debug/deps/chaos_determinism-2591d9a24030ebd3.d: tests/tests/chaos_determinism.rs

/root/repo/target/debug/deps/chaos_determinism-2591d9a24030ebd3: tests/tests/chaos_determinism.rs

tests/tests/chaos_determinism.rs:
