/root/repo/target/debug/deps/xsc_autotune-3251f8b033f8fb45.d: crates/autotune/src/lib.rs crates/autotune/src/gemm_tune.rs Cargo.toml

/root/repo/target/debug/deps/libxsc_autotune-3251f8b033f8fb45.rmeta: crates/autotune/src/lib.rs crates/autotune/src/gemm_tune.rs Cargo.toml

crates/autotune/src/lib.rs:
crates/autotune/src/gemm_tune.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
