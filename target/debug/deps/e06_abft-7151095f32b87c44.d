/root/repo/target/debug/deps/e06_abft-7151095f32b87c44.d: crates/bench/src/bin/e06_abft.rs

/root/repo/target/debug/deps/e06_abft-7151095f32b87c44: crates/bench/src/bin/e06_abft.rs

crates/bench/src/bin/e06_abft.rs:
