/root/repo/target/debug/deps/xsc_machine-4cf61f727e7f4172.d: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/comm_optimal.rs crates/machine/src/des.rs crates/machine/src/model.rs

/root/repo/target/debug/deps/libxsc_machine-4cf61f727e7f4172.rlib: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/comm_optimal.rs crates/machine/src/des.rs crates/machine/src/model.rs

/root/repo/target/debug/deps/libxsc_machine-4cf61f727e7f4172.rmeta: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/comm_optimal.rs crates/machine/src/des.rs crates/machine/src/model.rs

crates/machine/src/lib.rs:
crates/machine/src/collectives.rs:
crates/machine/src/comm_optimal.rs:
crates/machine/src/des.rs:
crates/machine/src/model.rs:
