/root/repo/target/debug/deps/rand-88ba05f639619bf7.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/rand-88ba05f639619bf7: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
