/root/repo/target/debug/deps/e17_chaos_runtime-92aacce4a5cd1b56.d: crates/bench/src/bin/e17_chaos_runtime.rs

/root/repo/target/debug/deps/e17_chaos_runtime-92aacce4a5cd1b56: crates/bench/src/bin/e17_chaos_runtime.rs

crates/bench/src/bin/e17_chaos_runtime.rs:
