/root/repo/target/debug/deps/exascale_whatif-376d4ca7c3a9b43b.d: examples/exascale_whatif.rs

/root/repo/target/debug/deps/exascale_whatif-376d4ca7c3a9b43b: examples/exascale_whatif.rs

examples/exascale_whatif.rs:
