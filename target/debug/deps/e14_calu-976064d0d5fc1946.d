/root/repo/target/debug/deps/e14_calu-976064d0d5fc1946.d: crates/bench/src/bin/e14_calu.rs Cargo.toml

/root/repo/target/debug/deps/libe14_calu-976064d0d5fc1946.rmeta: crates/bench/src/bin/e14_calu.rs Cargo.toml

crates/bench/src/bin/e14_calu.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
