/root/repo/target/debug/deps/end_to_end_benchmarks-eb252a9b37c84219.d: tests/tests/end_to_end_benchmarks.rs

/root/repo/target/debug/deps/end_to_end_benchmarks-eb252a9b37c84219: tests/tests/end_to_end_benchmarks.rs

tests/tests/end_to_end_benchmarks.rs:
