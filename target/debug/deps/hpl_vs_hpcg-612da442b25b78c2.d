/root/repo/target/debug/deps/hpl_vs_hpcg-612da442b25b78c2.d: examples/hpl_vs_hpcg.rs

/root/repo/target/debug/deps/hpl_vs_hpcg-612da442b25b78c2: examples/hpl_vs_hpcg.rs

examples/hpl_vs_hpcg.rs:
