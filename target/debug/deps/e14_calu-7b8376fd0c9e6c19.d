/root/repo/target/debug/deps/e14_calu-7b8376fd0c9e6c19.d: crates/bench/src/bin/e14_calu.rs

/root/repo/target/debug/deps/e14_calu-7b8376fd0c9e6c19: crates/bench/src/bin/e14_calu.rs

crates/bench/src/bin/e14_calu.rs:
