/root/repo/target/debug/deps/kernels-7a36eaeb3586c9e7.d: crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-7a36eaeb3586c9e7.rmeta: crates/bench/benches/kernels.rs Cargo.toml

crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
