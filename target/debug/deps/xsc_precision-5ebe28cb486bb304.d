/root/repo/target/debug/deps/xsc_precision-5ebe28cb486bb304.d: crates/precision/src/lib.rs crates/precision/src/adaptive.rs crates/precision/src/gmres_ir.rs crates/precision/src/half.rs crates/precision/src/ir.rs Cargo.toml

/root/repo/target/debug/deps/libxsc_precision-5ebe28cb486bb304.rmeta: crates/precision/src/lib.rs crates/precision/src/adaptive.rs crates/precision/src/gmres_ir.rs crates/precision/src/half.rs crates/precision/src/ir.rs Cargo.toml

crates/precision/src/lib.rs:
crates/precision/src/adaptive.rs:
crates/precision/src/gmres_ir.rs:
crates/precision/src/half.rs:
crates/precision/src/ir.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
