/root/repo/target/debug/deps/xsc_machine-fe69b04245dbee89.d: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/comm_optimal.rs crates/machine/src/des.rs crates/machine/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libxsc_machine-fe69b04245dbee89.rmeta: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/comm_optimal.rs crates/machine/src/des.rs crates/machine/src/model.rs Cargo.toml

crates/machine/src/lib.rs:
crates/machine/src/collectives.rs:
crates/machine/src/comm_optimal.rs:
crates/machine/src/des.rs:
crates/machine/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
