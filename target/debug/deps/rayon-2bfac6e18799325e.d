/root/repo/target/debug/deps/rayon-2bfac6e18799325e.d: crates/shims/rayon/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librayon-2bfac6e18799325e.rmeta: crates/shims/rayon/src/lib.rs Cargo.toml

crates/shims/rayon/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
