/root/repo/target/debug/deps/e02_dag_vs_forkjoin-9c92965a026283c9.d: crates/bench/src/bin/e02_dag_vs_forkjoin.rs

/root/repo/target/debug/deps/e02_dag_vs_forkjoin-9c92965a026283c9: crates/bench/src/bin/e02_dag_vs_forkjoin.rs

crates/bench/src/bin/e02_dag_vs_forkjoin.rs:
