/root/repo/target/debug/deps/property_cross_crate-f8a676481e2047bd.d: tests/tests/property_cross_crate.rs

/root/repo/target/debug/deps/property_cross_crate-f8a676481e2047bd: tests/tests/property_cross_crate.rs

tests/tests/property_cross_crate.rs:
