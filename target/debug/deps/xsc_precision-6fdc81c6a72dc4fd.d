/root/repo/target/debug/deps/xsc_precision-6fdc81c6a72dc4fd.d: crates/precision/src/lib.rs crates/precision/src/adaptive.rs crates/precision/src/gmres_ir.rs crates/precision/src/half.rs crates/precision/src/ir.rs

/root/repo/target/debug/deps/libxsc_precision-6fdc81c6a72dc4fd.rlib: crates/precision/src/lib.rs crates/precision/src/adaptive.rs crates/precision/src/gmres_ir.rs crates/precision/src/half.rs crates/precision/src/ir.rs

/root/repo/target/debug/deps/libxsc_precision-6fdc81c6a72dc4fd.rmeta: crates/precision/src/lib.rs crates/precision/src/adaptive.rs crates/precision/src/gmres_ir.rs crates/precision/src/half.rs crates/precision/src/ir.rs

crates/precision/src/lib.rs:
crates/precision/src/adaptive.rs:
crates/precision/src/gmres_ir.rs:
crates/precision/src/half.rs:
crates/precision/src/ir.rs:
