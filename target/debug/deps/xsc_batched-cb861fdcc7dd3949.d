/root/repo/target/debug/deps/xsc_batched-cb861fdcc7dd3949.d: crates/batched/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxsc_batched-cb861fdcc7dd3949.rmeta: crates/batched/src/lib.rs Cargo.toml

crates/batched/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
