/root/repo/target/debug/deps/xsc_bench-2adf6e9d0290e047.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/e01_hpl_vs_hpcg.rs crates/bench/src/experiments/e02_dag_vs_forkjoin.rs crates/bench/src/experiments/e03_mixed_precision.rs crates/bench/src/experiments/e04_tsqr.rs crates/bench/src/experiments/e05_energy_table.rs crates/bench/src/experiments/e06_abft.rs crates/bench/src/experiments/e07_batched.rs crates/bench/src/experiments/e08_autotune.rs crates/bench/src/experiments/e09_rbt.rs crates/bench/src/experiments/e10_scaling.rs crates/bench/src/experiments/e11_exascale_projection.rs crates/bench/src/experiments/e12_resilience_cg.rs crates/bench/src/experiments/e13_sync_reducing.rs crates/bench/src/experiments/e14_calu.rs crates/bench/src/experiments/e15_colored_smoother.rs crates/bench/src/experiments/e16_comm_optimal.rs crates/bench/src/experiments/e17_chaos_runtime.rs crates/bench/src/json.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libxsc_bench-2adf6e9d0290e047.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/e01_hpl_vs_hpcg.rs crates/bench/src/experiments/e02_dag_vs_forkjoin.rs crates/bench/src/experiments/e03_mixed_precision.rs crates/bench/src/experiments/e04_tsqr.rs crates/bench/src/experiments/e05_energy_table.rs crates/bench/src/experiments/e06_abft.rs crates/bench/src/experiments/e07_batched.rs crates/bench/src/experiments/e08_autotune.rs crates/bench/src/experiments/e09_rbt.rs crates/bench/src/experiments/e10_scaling.rs crates/bench/src/experiments/e11_exascale_projection.rs crates/bench/src/experiments/e12_resilience_cg.rs crates/bench/src/experiments/e13_sync_reducing.rs crates/bench/src/experiments/e14_calu.rs crates/bench/src/experiments/e15_colored_smoother.rs crates/bench/src/experiments/e16_comm_optimal.rs crates/bench/src/experiments/e17_chaos_runtime.rs crates/bench/src/json.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/e01_hpl_vs_hpcg.rs:
crates/bench/src/experiments/e02_dag_vs_forkjoin.rs:
crates/bench/src/experiments/e03_mixed_precision.rs:
crates/bench/src/experiments/e04_tsqr.rs:
crates/bench/src/experiments/e05_energy_table.rs:
crates/bench/src/experiments/e06_abft.rs:
crates/bench/src/experiments/e07_batched.rs:
crates/bench/src/experiments/e08_autotune.rs:
crates/bench/src/experiments/e09_rbt.rs:
crates/bench/src/experiments/e10_scaling.rs:
crates/bench/src/experiments/e11_exascale_projection.rs:
crates/bench/src/experiments/e12_resilience_cg.rs:
crates/bench/src/experiments/e13_sync_reducing.rs:
crates/bench/src/experiments/e14_calu.rs:
crates/bench/src/experiments/e15_colored_smoother.rs:
crates/bench/src/experiments/e16_comm_optimal.rs:
crates/bench/src/experiments/e17_chaos_runtime.rs:
crates/bench/src/json.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
