/root/repo/target/debug/deps/xsc_runtime-05800bcc05fe195a.d: crates/runtime/src/lib.rs crates/runtime/src/executor.rs crates/runtime/src/graph.rs crates/runtime/src/resilience.rs crates/runtime/src/trace.rs

/root/repo/target/debug/deps/libxsc_runtime-05800bcc05fe195a.rlib: crates/runtime/src/lib.rs crates/runtime/src/executor.rs crates/runtime/src/graph.rs crates/runtime/src/resilience.rs crates/runtime/src/trace.rs

/root/repo/target/debug/deps/libxsc_runtime-05800bcc05fe195a.rmeta: crates/runtime/src/lib.rs crates/runtime/src/executor.rs crates/runtime/src/graph.rs crates/runtime/src/resilience.rs crates/runtime/src/trace.rs

crates/runtime/src/lib.rs:
crates/runtime/src/executor.rs:
crates/runtime/src/graph.rs:
crates/runtime/src/resilience.rs:
crates/runtime/src/trace.rs:
