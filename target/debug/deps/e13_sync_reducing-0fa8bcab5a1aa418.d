/root/repo/target/debug/deps/e13_sync_reducing-0fa8bcab5a1aa418.d: crates/bench/src/bin/e13_sync_reducing.rs

/root/repo/target/debug/deps/e13_sync_reducing-0fa8bcab5a1aa418: crates/bench/src/bin/e13_sync_reducing.rs

crates/bench/src/bin/e13_sync_reducing.rs:
