/root/repo/target/debug/deps/exascale_whatif-68f8aa36161786e4.d: examples/exascale_whatif.rs Cargo.toml

/root/repo/target/debug/deps/libexascale_whatif-68f8aa36161786e4.rmeta: examples/exascale_whatif.rs Cargo.toml

examples/exascale_whatif.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
