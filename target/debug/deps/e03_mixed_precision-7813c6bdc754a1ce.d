/root/repo/target/debug/deps/e03_mixed_precision-7813c6bdc754a1ce.d: crates/bench/src/bin/e03_mixed_precision.rs

/root/repo/target/debug/deps/e03_mixed_precision-7813c6bdc754a1ce: crates/bench/src/bin/e03_mixed_precision.rs

crates/bench/src/bin/e03_mixed_precision.rs:
