/root/repo/target/debug/deps/xsc_autotune-0a363a316a7bc0ed.d: crates/autotune/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxsc_autotune-0a363a316a7bc0ed.rmeta: crates/autotune/src/lib.rs Cargo.toml

crates/autotune/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
