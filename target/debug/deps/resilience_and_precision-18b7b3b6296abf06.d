/root/repo/target/debug/deps/resilience_and_precision-18b7b3b6296abf06.d: tests/tests/resilience_and_precision.rs Cargo.toml

/root/repo/target/debug/deps/libresilience_and_precision-18b7b3b6296abf06.rmeta: tests/tests/resilience_and_precision.rs Cargo.toml

tests/tests/resilience_and_precision.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
