/root/repo/target/debug/deps/xsc_autotune-b81d4480758b7056.d: crates/autotune/src/lib.rs crates/autotune/src/gemm_tune.rs

/root/repo/target/debug/deps/xsc_autotune-b81d4480758b7056: crates/autotune/src/lib.rs crates/autotune/src/gemm_tune.rs

crates/autotune/src/lib.rs:
crates/autotune/src/gemm_tune.rs:
