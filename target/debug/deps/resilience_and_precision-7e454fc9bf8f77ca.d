/root/repo/target/debug/deps/resilience_and_precision-7e454fc9bf8f77ca.d: tests/tests/resilience_and_precision.rs

/root/repo/target/debug/deps/resilience_and_precision-7e454fc9bf8f77ca: tests/tests/resilience_and_precision.rs

tests/tests/resilience_and_precision.rs:
