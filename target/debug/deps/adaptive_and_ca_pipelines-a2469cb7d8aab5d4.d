/root/repo/target/debug/deps/adaptive_and_ca_pipelines-a2469cb7d8aab5d4.d: tests/tests/adaptive_and_ca_pipelines.rs Cargo.toml

/root/repo/target/debug/deps/libadaptive_and_ca_pipelines-a2469cb7d8aab5d4.rmeta: tests/tests/adaptive_and_ca_pipelines.rs Cargo.toml

tests/tests/adaptive_and_ca_pipelines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
