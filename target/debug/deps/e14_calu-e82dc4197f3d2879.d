/root/repo/target/debug/deps/e14_calu-e82dc4197f3d2879.d: crates/bench/src/bin/e14_calu.rs Cargo.toml

/root/repo/target/debug/deps/libe14_calu-e82dc4197f3d2879.rmeta: crates/bench/src/bin/e14_calu.rs Cargo.toml

crates/bench/src/bin/e14_calu.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
