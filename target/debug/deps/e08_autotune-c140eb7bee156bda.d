/root/repo/target/debug/deps/e08_autotune-c140eb7bee156bda.d: crates/bench/src/bin/e08_autotune.rs

/root/repo/target/debug/deps/e08_autotune-c140eb7bee156bda: crates/bench/src/bin/e08_autotune.rs

crates/bench/src/bin/e08_autotune.rs:
