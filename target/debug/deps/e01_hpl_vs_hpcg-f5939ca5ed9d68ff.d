/root/repo/target/debug/deps/e01_hpl_vs_hpcg-f5939ca5ed9d68ff.d: crates/bench/src/bin/e01_hpl_vs_hpcg.rs Cargo.toml

/root/repo/target/debug/deps/libe01_hpl_vs_hpcg-f5939ca5ed9d68ff.rmeta: crates/bench/src/bin/e01_hpl_vs_hpcg.rs Cargo.toml

crates/bench/src/bin/e01_hpl_vs_hpcg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
