/root/repo/target/debug/deps/e14_calu-02b9c620af1d6aee.d: crates/bench/src/bin/e14_calu.rs

/root/repo/target/debug/deps/e14_calu-02b9c620af1d6aee: crates/bench/src/bin/e14_calu.rs

crates/bench/src/bin/e14_calu.rs:
