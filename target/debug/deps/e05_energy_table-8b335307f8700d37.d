/root/repo/target/debug/deps/e05_energy_table-8b335307f8700d37.d: crates/bench/src/bin/e05_energy_table.rs

/root/repo/target/debug/deps/e05_energy_table-8b335307f8700d37: crates/bench/src/bin/e05_energy_table.rs

crates/bench/src/bin/e05_energy_table.rs:
