/root/repo/target/debug/deps/hpl_vs_hpcg-6ecb1c3c28453bfb.d: examples/hpl_vs_hpcg.rs Cargo.toml

/root/repo/target/debug/deps/libhpl_vs_hpcg-6ecb1c3c28453bfb.rmeta: examples/hpl_vs_hpcg.rs Cargo.toml

examples/hpl_vs_hpcg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
