/root/repo/target/debug/deps/xsc_machine-f5dab5916d950d74.d: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/comm_optimal.rs crates/machine/src/des.rs crates/machine/src/model.rs

/root/repo/target/debug/deps/libxsc_machine-f5dab5916d950d74.rlib: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/comm_optimal.rs crates/machine/src/des.rs crates/machine/src/model.rs

/root/repo/target/debug/deps/libxsc_machine-f5dab5916d950d74.rmeta: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/comm_optimal.rs crates/machine/src/des.rs crates/machine/src/model.rs

crates/machine/src/lib.rs:
crates/machine/src/collectives.rs:
crates/machine/src/comm_optimal.rs:
crates/machine/src/des.rs:
crates/machine/src/model.rs:
