/root/repo/target/debug/deps/rayon-56d02695c03b9daa.d: crates/shims/rayon/src/lib.rs

/root/repo/target/debug/deps/rayon-56d02695c03b9daa: crates/shims/rayon/src/lib.rs

crates/shims/rayon/src/lib.rs:
