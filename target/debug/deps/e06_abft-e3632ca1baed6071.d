/root/repo/target/debug/deps/e06_abft-e3632ca1baed6071.d: crates/bench/src/bin/e06_abft.rs

/root/repo/target/debug/deps/e06_abft-e3632ca1baed6071: crates/bench/src/bin/e06_abft.rs

crates/bench/src/bin/e06_abft.rs:
