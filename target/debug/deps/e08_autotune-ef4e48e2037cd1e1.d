/root/repo/target/debug/deps/e08_autotune-ef4e48e2037cd1e1.d: crates/bench/src/bin/e08_autotune.rs Cargo.toml

/root/repo/target/debug/deps/libe08_autotune-ef4e48e2037cd1e1.rmeta: crates/bench/src/bin/e08_autotune.rs Cargo.toml

crates/bench/src/bin/e08_autotune.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
