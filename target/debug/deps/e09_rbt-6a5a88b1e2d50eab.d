/root/repo/target/debug/deps/e09_rbt-6a5a88b1e2d50eab.d: crates/bench/src/bin/e09_rbt.rs

/root/repo/target/debug/deps/e09_rbt-6a5a88b1e2d50eab: crates/bench/src/bin/e09_rbt.rs

crates/bench/src/bin/e09_rbt.rs:
