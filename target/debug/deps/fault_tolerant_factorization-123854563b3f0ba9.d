/root/repo/target/debug/deps/fault_tolerant_factorization-123854563b3f0ba9.d: examples/fault_tolerant_factorization.rs Cargo.toml

/root/repo/target/debug/deps/libfault_tolerant_factorization-123854563b3f0ba9.rmeta: examples/fault_tolerant_factorization.rs Cargo.toml

examples/fault_tolerant_factorization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
